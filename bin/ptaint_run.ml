(* Run guest programs (Mini-C `.c`/`.mc` or SIMIPS assembly `.s`)
   under the pointer-taintedness architecture.

   Examples:
     ptaint-run victim.c --stdin-data "$(python exploit.py)"
     ptaint-run server.c --session "GET / HTTP/1.0" --policy control-only
     ptaint-run prog.s --policy none --trace-alerts
     ptaint-run -j 4 a.c b.c c.c d.c       # batch on 4 domains
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-instruction trace: pc, disassembly, and the source-register
   values (with taint masks) the instruction is about to read. *)
let tracer limit =
  let count = ref 0 in
  fun (m : Ptaint_cpu.Machine.t) insn ->
    if !count < limit then begin
      incr count;
      let reads =
        Ptaint_isa.Insn.reads insn
        |> List.filter (fun r -> r <> 0)
        |> List.sort_uniq compare
        |> List.map (fun r ->
               Format.asprintf "%a=%a" Ptaint_isa.Reg.pp r Ptaint_taint.Tword.pp
                 (Ptaint_cpu.Regfile.get m.Ptaint_cpu.Machine.regs r))
        |> String.concat " "
      in
      Printf.eprintf "  %08x: %-28s %s\n" m.Ptaint_cpu.Machine.pc
        (Ptaint_isa.Insn.to_string insn) reads
    end
    else if !count = limit then begin
      incr count;
      Printf.eprintf "  ... trace truncated after %d instructions\n" limit
    end

exception Guest_error of string

let load_program path =
  let source = read_file path in
  try
    if Filename.check_suffix path ".s" then Ptaint_asm.Assembler.assemble_exn source
    else Ptaint_runtime.Runtime.compile source
  with Ptaint_cc.Cc.Error { line; message; phase } ->
    raise (Guest_error (Printf.sprintf "%s:%d: %s error: %s" path line phase message))

let exit_code_of (r : Ptaint_sim.Sim.result) =
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited c -> c
  | Ptaint_sim.Sim.Alert _ -> 3
  | _ -> 4

(* Single-program mode: full guest output, diagnostics on alert. *)
let run_one path config disasm =
  let program = load_program path in
  if disasm then print_string (Ptaint_asm.Program.disassemble program);
  let r = Ptaint_sim.Sim.run ~config program in
  print_string r.Ptaint_sim.Sim.stdout;
  List.iteri
    (fun i m -> Printf.printf "[net reply %d] %s\n" (i + 1) (String.escaped m))
    r.Ptaint_sim.Sim.net_sent;
  Format.printf "--- %a (%s instructions%s)@."
    Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
    (string_of_int r.Ptaint_sim.Sim.instructions)
    (match r.Ptaint_sim.Sim.cycles with
     | Some c -> Printf.sprintf ", %d cycles" c
     | None -> "");
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Alert _ | Ptaint_sim.Sim.Fault _ ->
     print_string (Ptaint_sim.Diagnostics.report r)
   | _ -> ());
  exit_code_of r

(* Batch mode: each program becomes one simulation on the domain
   pool; one summary line per program, in command-line order. *)
let run_batch paths config domains =
  let batch =
    List.map
      (fun path ->
        ({ config with Ptaint_sim.Sim.argv = [ Filename.basename path ] }, load_program path))
      paths
  in
  let results = Ptaint_sim.Sim.run_many ?domains batch in
  List.iter2
    (fun path (r : Ptaint_sim.Sim.result) ->
      Format.printf "%-32s %a (%d instructions, %d syscalls)@." path
        Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome
        r.Ptaint_sim.Sim.instructions r.Ptaint_sim.Sim.syscalls)
    paths results;
  List.fold_left (fun acc r -> max acc (exit_code_of r)) 0 results

let run paths policy_name stdin_data sessions args disasm timing trace trace_limit domains =
  match Ptaint_sim.Sim.policy_of_label policy_name with
  | Error e ->
    prerr_endline e;
    2
  | Ok policy -> (
    try
      match paths with
      | [] ->
        prerr_endline "no guest program given";
        2
      | [ path ] ->
        let config =
          Ptaint_sim.Sim.config ~policy ~stdin:stdin_data
            ~sessions:(List.map (fun s -> [ s ]) sessions)
            ~argv:(Filename.basename path :: args)
            ~timing
            ?on_step:(if trace then Some (tracer trace_limit) else None)
            ()
        in
        run_one path config disasm
      | paths ->
        if trace then prerr_endline "note: --trace is ignored in batch (-j) mode";
        let config =
          Ptaint_sim.Sim.config ~policy ~stdin:stdin_data
            ~sessions:(List.map (fun s -> [ s ]) sessions)
            ~timing ()
        in
        run_batch paths config domains
    with
    | Guest_error e ->
      prerr_endline e;
      2
    | Sys_error e ->
      prerr_endline e;
      2)

let paths_arg = Arg.(value & pos_all file [] & info [] ~docv:"PROGRAM")

let policy_arg =
  Arg.(value & opt string "full" & info [ "policy"; "p" ] ~docv:"POLICY"
         ~doc:"Protection policy: full, control-only, none, or baseline.")

let stdin_arg =
  Arg.(value & opt string "" & info [ "stdin-data" ] ~docv:"DATA" ~doc:"Guest standard input.")

let session_arg =
  Arg.(value & opt_all string [] & info [ "session" ] ~docv:"MSG"
         ~doc:"Scripted network session (repeatable; one message per option).")

let args_arg =
  Arg.(value & opt_all string [] & info [ "arg" ] ~docv:"ARG" ~doc:"Guest argv entry (repeatable).")

let disasm_arg = Arg.(value & flag & info [ "disasm" ] ~doc:"Print the disassembly before running.")
let timing_arg = Arg.(value & flag & info [ "timing" ] ~doc:"Run through the pipeline timing model.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Trace executed instructions (to stderr).")

let trace_limit_arg =
  Arg.(value & opt int 200 & info [ "trace-limit" ] ~docv:"N"
         ~doc:"Stop tracing after N instructions (default 200).")

let domains_arg =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"With several PROGRAMs: run the batch on N domains (default: all cores).")

let cmd =
  let doc = "run guest programs on the pointer-taintedness architecture" in
  Cmd.v (Cmd.info "ptaint-run" ~doc)
    Term.(const run $ paths_arg $ policy_arg $ stdin_arg $ session_arg $ args_arg $ disasm_arg
          $ timing_arg $ trace_arg $ trace_limit_arg $ domains_arg)

let () = exit (Cmd.eval' cmd)
