(* Transparency tour: the six SPEC-2000-like workloads run on the
   protected architecture with every input byte tainted — and not one
   alert fires (Table 3).  Each workload self-verifies its
   computation, so "ran fine" means "computed the right answer".

   Run with: dune exec examples/workload_tour.exe *)

let () =
  print_endline "Running the six workloads under full pointer-taintedness detection:\n";
  let rows =
    List.map
      (fun w ->
        let r = Ptaint_workloads.Workload.run w in
        Format.printf "%-7s %s@," w.Ptaint_workloads.Workload.name (String.trim r.Ptaint_workloads.Workload.stdout);
        Format.print_flush ();
        print_newline ();
        [ w.Ptaint_workloads.Workload.name;
          Ptaint_report.Report.commas r.Ptaint_workloads.Workload.program_bytes;
          Ptaint_report.Report.commas r.Ptaint_workloads.Workload.input_bytes;
          Ptaint_report.Report.commas r.Ptaint_workloads.Workload.instructions;
          string_of_int r.Ptaint_workloads.Workload.alerts ])
      Ptaint_workloads.Workload.all
  in
  print_newline ();
  print_string
    (Ptaint_report.Report.table
       ~headers:[ "workload"; "program bytes"; "input bytes"; "instructions"; "alerts" ]
       rows)
