(* The Table 2 attack, end to end: a WU-FTPD-style server with the
   SITE EXEC format-string bug, attacked over the scripted network to
   overwrite the logged-in user's uid word — a non-control-data
   attack.  We build the exploit payload the way a real attacker
   would, then run the session under each protection policy.

   Run with: dune exec examples/ftp_format_string.exe *)

open Ptaint_attacks

let () =
  let program = Ptaint_runtime.Runtime.compile Ptaint_apps.Wuftpd.source in
  let uid_addr = Ptaint_asm.Program.symbol_exn program Ptaint_apps.Wuftpd.uid_symbol in
  Format.printf "Target: the session uid word at 0x%08x (the paper's 0x1002bc20).@." uid_addr;
  let payload = Payload.format_write_word ~ap_skip_words:0 ~target:uid_addr ~value:0 in
  Format.printf "Payload (%d bytes): width-steered %%x directives, four %%hhn writes,@."
    (String.length payload);
  Format.printf "and the four target addresses planted after the format text:@.  %S@.@."
    (String.sub payload 0 (min 80 (String.length payload)) ^ "...");
  let session =
    Ptaint_apps.Wuftpd.login_session
    @ [ Ptaint_apps.Wuftpd.site_exec payload; Ptaint_apps.Wuftpd.stor_passwd; "quit\n" ]
  in
  let run policy label =
    let config =
      Ptaint_sim.Sim.config ~policy ~sessions:[ session ]
        ~fs_init:[ (Ptaint_apps.Wuftpd.passwd_path, "root:x:0:0:root:/root:/bin/bash\n") ]
        ()
    in
    let r = Ptaint_sim.Sim.run ~config program in
    Format.printf "--- %s ---@." label;
    (match r.Ptaint_sim.Sim.outcome with
     | Ptaint_sim.Sim.Alert a ->
       Format.printf "ALERT: %a@." Ptaint_cpu.Machine.pp_alert a;
       Format.printf "The server is stopped before the uid word is written.@."
     | o -> Format.printf "no alert; run ended with: %a@." Ptaint_sim.Sim.pp_outcome o);
    (match
       Ptaint_os.Fs.read (Ptaint_os.Kernel.fs r.Ptaint_sim.Sim.kernel)
         ~path:Ptaint_apps.Wuftpd.passwd_path
     with
     | Some contents -> Format.printf "/etc/passwd: %s@.@." (String.trim contents)
     | None -> Format.printf "/etc/passwd: missing@.@.")
  in
  run Ptaint_cpu.Policy.unprotected "no protection (the attack succeeds)";
  run Ptaint_cpu.Policy.control_only "control-data-only protection (Minos-style: blind to it)";
  run Ptaint_cpu.Policy.default "pointer taintedness (the paper's architecture)"
