(* The paper's headline claim, live: non-control-data attacks defeat
   control-flow-integrity defenses but not pointer-taintedness
   detection.  Runs the full attack catalogue under all three
   policies and prints the coverage matrix.

   Run with: dune exec examples/noncontrol_data.exe *)

open Ptaint_attacks

let () =
  print_endline "Security coverage: 9 attacks x 3 protection policies.\n";
  let headers = "attack" :: "class" :: List.map fst Scenario.coverage_policies in
  let rows =
    List.map
      (fun (s : Scenario.t) ->
        s.Scenario.name :: Scenario.kind_name s.Scenario.kind
        :: List.map
             (fun (_, policy) -> Scenario.verdict_name (fst (Scenario.run ~policy s)))
             Scenario.coverage_policies)
      Catalog.all
  in
  print_string (Ptaint_report.Report.table ~headers rows);
  print_endline "";
  print_endline "Detail of one non-control-data detection (GHTTPD URL pointer):";
  (match Scenario.run Catalog.ghttpd_url_pointer with
   | Scenario.Detected a, _ ->
     Format.printf "  %a@." Ptaint_cpu.Machine.pp_alert a;
     print_endline
       "  The tainted pointer is a stack address planted by the request — the\n\
       \  paper's 0x7fff3e94 — dereferenced by a load-byte instruction.  No\n\
       \  control data was harmed in the making of this attack."
   | v, _ -> Format.printf "  unexpected: %a@." Scenario.pp_verdict v);
  print_endline "";
  print_endline "And what it costs the unprotected server:";
  match Scenario.run ~policy:Ptaint_cpu.Policy.unprotected Catalog.ghttpd_url_pointer with
  | Scenario.Compromised evidence, r ->
    Format.printf "  %s (exec log: %s)@." evidence
      (String.concat ", " r.Ptaint_sim.Sim.execs)
  | v, _ -> Format.printf "  unexpected: %a@." Scenario.pp_verdict v
