(* Quickstart: compile a small C program onto the simulated
   pointer-taintedness architecture, feed it malicious input, and
   watch the detector catch the tainted dereference.

   Run with: dune exec examples/quickstart.exe *)

let victim =
  {|
/* A one-line pointer-taintedness bug: the program reads 4 bytes from
   its caller and uses them as an address. */
int main(void) {
  char buf[8];
  read(0, buf, 4);
  int *p = *(int **)buf;   /* p is built from external input */
  printf("stored value: %d\n", *p);
  return 0;
}
|}

let run ~policy ~label input =
  let program = Ptaint_runtime.Runtime.compile victim in
  let config = Ptaint_sim.Sim.config ~policy ~stdin:input () in
  let result = Ptaint_sim.Sim.run ~config program in
  Format.printf "%-22s -> %a@." label Ptaint_sim.Sim.pp_outcome result.Ptaint_sim.Sim.outcome

let () =
  print_endline "The attacker sends \"aaaa\", hoping the program dereferences 0x61616161:\n";
  run ~policy:Ptaint_cpu.Policy.default ~label:"pointer taintedness" "aaaa";
  run ~policy:Ptaint_cpu.Policy.control_only ~label:"control-data only" "aaaa";
  run ~policy:Ptaint_cpu.Policy.unprotected ~label:"no protection" "aaaa";
  print_endline "\nEvery byte read from outside carries a taint bit; ALU instructions";
  print_endline "propagate it (Table 1 of the paper); loads, stores and indirect jumps";
  print_endline "check it.  The alert above names the instruction, the register and the";
  print_endline "tainted pointer value, exactly like the paper's Table 2.";
  print_endline "\nWell-behaved programs are untouched — taint flows through their data";
  print_endline "without ever reaching a pointer:\n";
  let greeter =
    {| int main(void) {
         char name[64];
         gets(name);
         printf("hello, %s!\n", name);
         return 0;
       } |}
  in
  let program = Ptaint_runtime.Runtime.compile greeter in
  let config = Ptaint_sim.Sim.config ~policy:Ptaint_cpu.Policy.default ~stdin:"world\n" () in
  let result = Ptaint_sim.Sim.run ~config program in
  Format.printf "greeter                -> %a; stdout: %s@."
    Ptaint_sim.Sim.pp_outcome result.Ptaint_sim.Sim.outcome
    (String.trim result.Ptaint_sim.Sim.stdout)
