(* Machine semantics: ALU, taint propagation per Table 1, and the
   three pointer-taintedness detectors. *)

open Ptaint_isa
open Ptaint_taint
open Ptaint_cpu

let data = Ptaint_mem.Layout.data_base
let text = Ptaint_mem.Layout.text_base

let machine ?(policy = Policy.default) insns =
  let mem = Ptaint_mem.Memory.create () in
  Ptaint_mem.Memory.map_range mem ~lo:data ~bytes:65536;
  Machine.create ~policy ~code:{ Machine.base = text; insns = Array.of_list insns } ~mem
    ~entry:text ()

let set m r w = Regfile.set m.Machine.regs r w
let get m r = Regfile.get m.Machine.regs r

let step_ok m =
  match Machine.step m with
  | Machine.Normal -> ()
  | s ->
    Alcotest.failf "expected Normal, got %s"
      (match s with
       | Machine.Alert a -> Format.asprintf "Alert (%a)" Machine.pp_alert a
       | Machine.Fault f -> Format.asprintf "Fault (%a)" Machine.pp_fault f
       | Machine.Syscall -> "Syscall"
       | Machine.Break_trap c -> Printf.sprintf "Break %d" c
       | Machine.Normal -> assert false)

let run_all m = Array.iter (fun _ -> step_ok m) m.Machine.code.Machine.insns

let check_tword name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %s got %s" name
       (Format.asprintf "%a" Tword.pp expected)
       (Format.asprintf "%a" Tword.pp actual))
    true (Tword.equal expected actual)

(* --- ALU semantics and default propagation --- *)

let test_add_taint_or () =
  let m = machine [ R (ADD, 1, 2, 3) ] in
  set m 2 (Tword.make ~v:5 ~m:0b0001);
  set m 3 (Tword.make ~v:7 ~m:0b0100);
  run_all m;
  (* "after executing ADD R1,R2,R3, R1 is tainted iff R2 or R3 is" *)
  check_tword "add" (Tword.make ~v:12 ~m:0b0101) (get m 1)

let test_reg0_immutable () =
  let m = machine [ R (ADD, 0, 2, 2) ] in
  set m 2 (Tword.tainted 21);
  run_all m;
  check_tword "$0 unchanged" Tword.zero (get m 0)

let test_xor_idiom () =
  let m = machine [ R (XOR, 1, 2, 2) ] in
  set m 2 (Tword.tainted 0xABCD);
  run_all m;
  check_tword "xor same untaints" (Tword.untainted 0) (get m 1);
  (* but XOR of two different tainted registers keeps taint *)
  let m = machine [ R (XOR, 1, 2, 3) ] in
  set m 2 (Tword.tainted 0xF0);
  set m 3 (Tword.untainted 0x0F);
  run_all m;
  check_tword "xor diff" (Tword.tainted 0xFF) (get m 1)

let test_and_zero_untaints () =
  let m = machine [ R (AND, 1, 2, 3) ] in
  set m 2 (Tword.tainted 0x11223344);
  set m 3 (Tword.untainted 0x0000FFFF);
  run_all m;
  check_tword "and masks high bytes" (Tword.make ~v:0x3344 ~m:0b0011) (get m 1)

let test_andi_untaints () =
  let m = machine [ I (ANDI, 1, 2, 0xFF) ] in
  set m 2 (Tword.tainted 0x11223344);
  run_all m;
  check_tword "andi" (Tword.make ~v:0x44 ~m:0b0001) (get m 1)

let test_compare_untaints_operands () =
  (* Table 1: "Untaint every byte in the operands of the compare". *)
  let m = machine [ R (SLT, 1, 2, 3) ] in
  set m 2 (Tword.tainted 3);
  set m 3 (Tword.untainted 10);
  run_all m;
  check_tword "slt result" (Tword.untainted 1) (get m 1);
  check_tword "rs untainted" (Tword.untainted 3) (get m 2);
  (* Branch compares untaint too. *)
  let m = machine [ Branch2 (BNE, 2, 3, 1); Nop; Nop ] in
  set m 2 (Tword.tainted 1);
  set m 3 (Tword.untainted 1);
  step_ok m;
  check_tword "bne untaints" (Tword.untainted 1) (get m 2)

let test_compare_rule_disabled () =
  let policy = { Policy.default with Policy.compare_untaints = false } in
  let m = machine ~policy [ R (SLT, 1, 2, 3) ] in
  set m 2 (Tword.tainted 3);
  set m 3 (Tword.untainted 10);
  run_all m;
  check_tword "rs stays tainted" (Tword.tainted 3) (get m 2);
  check_tword "result tainted" (Tword.tainted 1) (get m 1)

let test_shift_propagation () =
  let m = machine [ Shift (SLL, 1, 2, 8) ] in
  set m 2 (Tword.make ~v:0xAB ~m:0b0001);
  run_all m;
  check_tword "sll 8 moves taint" (Tword.make ~v:0xAB00 ~m:0b0010) (get m 1);
  let m = machine [ Shift (SRL, 1, 2, 4) ] in
  set m 2 (Tword.make ~v:0xAB0 ~m:0b0010);
  run_all m;
  (* partial shift smears into the adjacent byte along shift direction *)
  check_tword "srl 4 smears" (Tword.make ~v:0xAB ~m:0b0011) (get m 1)

let test_lui_untainted () =
  let m = machine [ Lui (1, 0x1002) ] in
  set m 1 (Tword.tainted 99);
  run_all m;
  check_tword "lui constant" (Tword.untainted 0x10020000) (get m 1)

let test_muldiv_taint () =
  let m = machine [ Muldiv (MULT, 2, 3); Mflo 1; Mfhi 4 ] in
  set m 2 (Tword.tainted 6);
  set m 3 (Tword.untainted 7);
  run_all m;
  check_tword "mflo" (Tword.tainted 42) (get m 1);
  check_tword "mfhi" (Tword.tainted 0) (get m 4)

(* --- Memory instructions carry taint --- *)

let test_load_store_taint () =
  let m =
    machine
      [ Store (SW, 2, 0, 3);   (* store tainted word *)
        Load (LW, 4, 0, 3);    (* load it back *)
        Load (LBU, 5, 0, 3) ]
  in
  set m 2 (Tword.make ~v:0xCAFEBABE ~m:0b0110);
  set m 3 (Tword.untainted data);
  run_all m;
  check_tword "lw" (Tword.make ~v:0xCAFEBABE ~m:0b0110) (get m 4);
  (* byte 0 of the stored word was untainted *)
  check_tword "lbu" (Tword.untainted 0xBE) (get m 5)

let test_byte_store_taint () =
  let m = machine [ Store (SB, 2, 0, 3); Load (LB, 4, 0, 3) ] in
  set m 2 (Tword.make ~v:0x80 ~m:0b0001);
  set m 3 (Tword.untainted data);
  run_all m;
  (* LB sign-extends the value; the taint bit stays on byte 0 *)
  check_tword "lb sign extension" (Tword.make ~v:0xFFFFFF80 ~m:0b0001) (get m 4)

(* --- Detection (section 4.3) --- *)

let expect_alert m kind reg =
  match Machine.step m with
  | Machine.Alert a ->
    Alcotest.(check bool) "kind" true (a.Machine.kind = kind);
    Alcotest.(check int) "register" reg a.Machine.reg
  | s ->
    Alcotest.failf "expected alert, got %s"
      (match s with
       | Machine.Normal -> "Normal"
       | Machine.Fault f -> Format.asprintf "Fault (%a)" Machine.pp_fault f
       | _ -> "other")

let test_detect_tainted_load () =
  let m = machine [ Load (LW, 3, 0, 3) ] in
  set m 3 (Tword.tainted 0x61616161);
  expect_alert m Machine.Load_address 3

let test_detect_tainted_store () =
  let m = machine [ Store (SW, 21, 0, 3) ] in
  set m 3 (Tword.tainted 0x64636261);
  expect_alert m Machine.Store_address 3

let test_detect_partial_taint () =
  (* "Anytime a data word that has tainted bytes is used for memory
     access ... an alert is raised" — one tainted byte suffices. *)
  let m = machine [ Load (LW, 4, 0, 3) ] in
  set m 3 (Tword.make ~v:data ~m:0b0010);
  expect_alert m Machine.Load_address 3

let test_detect_tainted_jr () =
  let m = machine [ Jr 31 ] in
  set m 31 (Tword.tainted 0x61616161);
  expect_alert m Machine.Jump_target 31

let test_detect_tainted_jalr () =
  let m = machine [ Jalr (31, 25) ] in
  set m 25 (Tword.tainted 0x41414141);
  expect_alert m Machine.Jump_target 25

let test_untainted_no_alert () =
  let m = machine [ Load (LW, 4, 0, 3); Store (SW, 4, 4, 3) ] in
  set m 3 (Tword.untainted data);
  run_all m

let test_control_only_misses_data_attack () =
  (* A Minos-style policy does not check load/store addresses. *)
  let m = machine ~policy:Policy.control_only [ Store (SW, 21, 0, 3) ] in
  set m 3 (Tword.make ~v:data ~m:0b1111);
  step_ok m;
  (* ...but still catches tainted jump targets. *)
  let m = machine ~policy:Policy.control_only [ Jr 31 ] in
  set m 31 (Tword.tainted 0x61616161);
  expect_alert m Machine.Jump_target 31

let test_no_protection_faults () =
  let m = machine ~policy:Policy.unprotected [ Load (LW, 3, 0, 3) ] in
  set m 3 (Tword.tainted 0x61616161);
  (match Machine.step m with
   | Machine.Fault (Machine.Segfault _) -> ()
   | Machine.Fault (Machine.Misaligned _) -> ()
   | s ->
     Alcotest.failf "expected fault, got %s"
       (match s with Machine.Normal -> "Normal" | Machine.Alert _ -> "Alert" | _ -> "other"));
  let m = machine ~policy:Policy.unprotected [ Jr 31 ] in
  set m 31 (Tword.tainted 0x61616161);
  step_ok m;
  (* the wild jump faults on the next fetch *)
  match Machine.step m with
  | Machine.Fault (Machine.Bad_pc pc) -> Alcotest.(check int) "pc" 0x61616161 pc
  | _ -> Alcotest.fail "expected Bad_pc"

let test_misaligned_fault () =
  let m = machine [ Load (LW, 4, 1, 3) ] in
  set m 3 (Tword.untainted data);
  match Machine.step m with
  | Machine.Fault (Machine.Misaligned { addr; width }) ->
    Alcotest.(check int) "addr" (data + 1) addr;
    Alcotest.(check int) "width" 4 width
  | _ -> Alcotest.fail "expected misaligned fault"

let test_alert_format () =
  (* Table 2's alert line formatting. *)
  let m = machine [ Store (SW, 21, 0, 3) ] in
  set m 3 (Tword.tainted 0x1002bc20);
  match Machine.step m with
  | Machine.Alert a ->
    let s = Format.asprintf "%a" Machine.pp_alert a in
    let affix = "sw $21,0($3)" in
    let rec contains i =
      i + String.length affix <= String.length s
      && (String.sub s i (String.length affix) = affix || contains (i + 1))
    in
    Alcotest.(check bool) ("contains sw $21,0($3): " ^ s) true (contains 0)
  | _ -> Alcotest.fail "expected alert"

(* --- Control flow --- *)

let test_branch_and_jump () =
  let m =
    machine
      [ Branch2 (BEQ, 0, 0, 1);     (* skip next *)
        I (ADDIU, 1, 0, 99);        (* skipped *)
        I (ADDIU, 2, 0, 7);
        J (text + 16);
        Jal (text + 20) ]           (* jumped over — wait, target is next anyway *)
  in
  step_ok m;
  Alcotest.(check int) "pc after taken branch" (text + 8) m.Machine.pc;
  step_ok m;
  check_tword "r2" (Tword.untainted 7) (get m 2);
  step_ok m;
  Alcotest.(check int) "pc after j" (text + 16) m.Machine.pc;
  step_ok m;
  check_tword "ra" (Tword.untainted (text + 20)) (get m 31);
  check_tword "r1 never set" Tword.zero (get m 1)

let test_jr_return () =
  let m = machine [ Jr 31; Nop; Nop; Nop ] in
  set m 31 (Tword.untainted (text + 12));
  step_ok m;
  Alcotest.(check int) "pc" (text + 12) m.Machine.pc

(* --- Pipeline timing model --- *)

let test_pipeline_counts () =
  let m =
    machine
      [ I (ADDIU, 3, 0, 0);
        R (ADD, 1, 2, 3);
        Load (LW, 4, 0, 5);
        R (ADD, 6, 4, 4);  (* load-use hazard *)
        Jr 31 ]
  in
  set m 5 (Tword.untainted data);
  set m 31 (Tword.untainted (text + 20));
  let p = Pipeline.create m in
  for _ = 1 to 5 do
    match Pipeline.step p with
    | Machine.Normal -> ()
    | _ -> Alcotest.fail "pipeline step failed"
  done;
  let st = Pipeline.stats p in
  Alcotest.(check int) "instructions" 5 st.Pipeline.instructions;
  Alcotest.(check int) "one load-use stall" 1 st.Pipeline.load_use_stalls;
  Alcotest.(check bool) "cycles counted" true (st.Pipeline.cycles > 5);
  Alcotest.(check bool) "taint gates counted" true (st.Pipeline.taint_gate_ops > 0);
  Alcotest.(check int) "detector checks: lw + jr" 2 st.Pipeline.detector_checks

(* --- Properties --- *)

let prop_alu_taint_monotone =
  (* Default-rule ops never invent taint from clean operands. *)
  let open QCheck2.Gen in
  let gen = tup4 (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF) (int_bound 15) (int_bound 15) in
  QCheck2.Test.make ~name:"ALU ops on clean inputs give clean outputs" gen
    (fun (v2, v3, _, _) ->
      List.for_all
        (fun op ->
          let m = machine [ R (op, 1, 2, 3) ] in
          set m 2 (Tword.untainted v2);
          set m 3 (Tword.untainted v3);
          (match Machine.step m with Machine.Normal -> () | _ -> failwith "step");
          not (Tword.is_tainted (get m 1)))
        [ Insn.ADD; ADDU; SUB; SUBU; AND; OR; XOR; NOR; SLT; SLTU ])

let prop_add_matches_semantics =
  QCheck2.Test.make ~name:"ADD matches 32-bit semantics"
    QCheck2.Gen.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (a, b) ->
      let m = machine [ R (ADD, 1, 2, 3) ] in
      set m 2 (Tword.untainted a);
      set m 3 (Tword.untainted b);
      (match Machine.step m with Machine.Normal -> () | _ -> failwith "step");
      Tword.value (get m 1) = (a + b) land 0xFFFFFFFF)

let () =
  Alcotest.run "cpu"
    [ ( "taint propagation",
        [ Alcotest.test_case "ADD ORs taint" `Quick test_add_taint_or;
          Alcotest.test_case "$0 immutable" `Quick test_reg0_immutable;
          Alcotest.test_case "XOR idiom" `Quick test_xor_idiom;
          Alcotest.test_case "AND with untainted zero" `Quick test_and_zero_untaints;
          Alcotest.test_case "ANDI" `Quick test_andi_untaints;
          Alcotest.test_case "compare untaints" `Quick test_compare_untaints_operands;
          Alcotest.test_case "compare rule off (ablation)" `Quick test_compare_rule_disabled;
          Alcotest.test_case "shift" `Quick test_shift_propagation;
          Alcotest.test_case "LUI constant" `Quick test_lui_untainted;
          Alcotest.test_case "MULT/DIV" `Quick test_muldiv_taint ] );
      ( "memory taint",
        [ Alcotest.test_case "load/store word" `Quick test_load_store_taint;
          Alcotest.test_case "byte store + sign extension" `Quick test_byte_store_taint ] );
      ( "detection",
        [ Alcotest.test_case "tainted load address" `Quick test_detect_tainted_load;
          Alcotest.test_case "tainted store address" `Quick test_detect_tainted_store;
          Alcotest.test_case "single tainted byte" `Quick test_detect_partial_taint;
          Alcotest.test_case "tainted JR" `Quick test_detect_tainted_jr;
          Alcotest.test_case "tainted JALR" `Quick test_detect_tainted_jalr;
          Alcotest.test_case "clean pointers silent" `Quick test_untainted_no_alert;
          Alcotest.test_case "control-only baseline" `Quick test_control_only_misses_data_attack;
          Alcotest.test_case "no protection faults" `Quick test_no_protection_faults;
          Alcotest.test_case "misaligned" `Quick test_misaligned_fault;
          Alcotest.test_case "alert format" `Quick test_alert_format ] );
      ( "control flow",
        [ Alcotest.test_case "branch/jump" `Quick test_branch_and_jump;
          Alcotest.test_case "jr" `Quick test_jr_return ] );
      ("pipeline", [ Alcotest.test_case "timing counters" `Quick test_pipeline_counts ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_alu_taint_monotone; prop_add_matches_semantics ] ) ]
