(* Chaos tests for the process-isolated ptaintd backend (--isolate).

   The claim under test is containment with byte-identical results: a
   worker process SIGKILLed or SIGSTOPped mid-campaign must cost the
   campaign nothing — the daemon keeps serving, disturbed jobs are
   redelivered to surviving workers, the dead worker respawns, and
   the client-side metrics table rebuilt from streamed counter deltas
   equals the table a local, undisturbed run of the same jobs
   produces, byte for byte.

   These tests run against the real ptaintd binary, not an in-process
   server: worker respawn forks, and OCaml's [Unix.fork] refuses to
   run in any process that has ever created a second domain — which
   an in-process Alcotest harness inevitably has.  Driving the
   subprocess also exercises exactly what operators deploy.  For the
   same reason the test process itself never spawns a domain: the
   chaos signal is fired from [run_batch]'s [on_event] hook on the
   main thread.

   The campaign shape is chosen so chaos strikes something: the first
   [workers] specs are spinners that pin every worker busy for 0.6 s
   (cooperative watchdog timeout), the rest are quick exit jobs
   queued behind them — so a signal sent 0.2 s in always interrupts
   an in-flight dispatch. *)

module Client = Ptaint_daemon.Client
module Proto = Ptaint_daemon.Proto
module Campaign = Ptaint_campaign.Campaign
module M = Ptaint_obs.Metrics

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let exit_asm = ".text\nmain: li $v0, 1\n li $a0, 0\n syscall\n"
let spin_asm = ".text\nmain: j main\n"

let spin_spec i =
  Proto.job_spec
    ~tag:(Printf.sprintf "spin-%d" i)
    ~timeout:0.6 ~max_instructions:max_int (Proto.Wire_asm spin_asm)

let exit_spec i =
  Proto.job_spec ~tag:(Printf.sprintf "exit-%d" i) (Proto.Wire_asm exit_asm)

let campaign_specs ~workers =
  List.init workers spin_spec @ List.init 12 exit_spec

(* --- driving the real daemon ----------------------------------------- *)

let ptaintd_exe () =
  (* dune runs tests with cwd [_build/default/test]; the second form
     covers a hand-run from the repo root *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/ptaintd.exe"; "_build/default/bin/ptaintd.exe" ]
  with
  | Some exe -> exe
  | None -> Alcotest.fail "ptaintd.exe not built (declare it as a test dep)"

(* Direct children of [pid], from /proc — the supervisor's worker
   fleet, seen from outside the daemon. *)
let children_of pid =
  match Sys.readdir "/proc" with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter_map int_of_string_opt
    |> List.filter (fun p ->
        match
          In_channel.with_open_text
            (Printf.sprintf "/proc/%d/stat" p)
            In_channel.input_all
        with
        | exception _ -> false
        | stat -> (
          (* ppid is the 4th field, but comm (2nd) may contain spaces:
             parse from the last ')' *)
          match String.rindex_opt stat ')' with
          | None -> false
          | Some i -> (
            let rest =
              String.sub stat (i + 1) (String.length stat - i - 1)
              |> String.trim
            in
            match String.split_on_char ' ' rest with
            | _state :: ppid :: _ -> int_of_string_opt ppid = Some pid
            | _ -> false)))
    |> List.sort compare

let wait_until ~timeout ~what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match cond () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail (Printf.sprintf "timed out waiting for %s" what)
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let terminate_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  wait ()

let sock_seq = ref 0

(* Launch [ptaintd --isolate --workers N] on a fresh socket, wait for
   the worker fleet to appear, and hand [f] the socket path and the
   workers' pids.  The daemon is torn down (SIGTERM, then SIGKILL)
   whatever [f] does. *)
let with_isolated_daemon ?(workers = 2) f =
  incr sock_seq;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ptaintd-sup-%d-%d.sock" (Unix.getpid ()) !sock_seq)
  in
  let exe = ptaintd_exe () in
  let argv =
    [| exe; "--socket"; path; "--isolate"; "--workers"; string_of_int workers;
       "--queue"; "128"; "--max-inflight"; "64"; "--quiet" |]
  in
  let dpid = Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr in
  Fun.protect
    ~finally:(fun () ->
      terminate_daemon dpid;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let pids =
        wait_until ~timeout:10.0 ~what:"worker fleet + socket" (fun () ->
            let kids = children_of dpid in
            if List.length kids = workers && Sys.file_exists path then Some kids
            else None)
      in
      Alcotest.(check int) "worker fleet forked" workers (List.length pids);
      f path pids)

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* The connect-mode merge: per-label registries built in submission
   order from streamed counter deltas, rendered as the same aligned
   table the batch runner prints — the repo's daemon-vs-batch parity
   contract. *)
let table_builder () =
  let regs = ref [] in
  let merge label counters =
    let m =
      match List.assoc_opt label !regs with
      | Some m -> m
      | None ->
        let m = M.create () in
        regs := !regs @ [ (label, m) ];
        m
    in
    List.iter (fun (name, by) -> M.inc ~by (M.counter m name)) counters
  in
  (merge, fun () -> Campaign.metrics_table_of !regs)

(* What an undisturbed run of the same specs produces: each job run
   locally through the same campaign machinery a worker uses. *)
let local_table specs =
  let merge, render = table_builder () in
  List.iter
    (fun spec ->
      match Proto.job_of_spec spec with
      | Error m -> Alcotest.fail ("local job_of_spec: " ^ m)
      | Ok job ->
        let r = Campaign.run_job job in
        merge r.Campaign.policy_label (Campaign.job_counters r))
    specs;
  render ()

let daemon_table outcomes =
  let merge, render = table_builder () in
  List.iter
    (fun o ->
      match o with
      | Client.Done (Proto.Finished f) -> merge f.policy_label f.counters
      | Client.Done (Proto.Job_failed f) -> merge f.policy_label f.counters
      | Client.Done (Proto.Started _) -> Alcotest.fail "Started is not terminal"
      | Client.Refused reason -> Alcotest.fail ("refused: " ^ reason))
    outcomes;
  render ()

(* Submit the campaign, strike one worker with [signal] 0.2 s in
   (from the event pump: by the first streamed event every worker is
   pinned on a spinner), await every terminal event, then prove the
   daemon kept serving and the results match an undisturbed local run
   byte for byte. *)
let chaos_campaign ~signal ~restart_reason path pids =
  let specs = campaign_specs ~workers:2 in
  let expected = local_table specs in
  let c = Client.connect ~client:"chaos" ~retries:3 path in
  let victim = List.hd pids in
  let struck = ref false in
  let on_event _ =
    if not !struck then begin
      struck := true;
      Unix.sleepf 0.2;
      Unix.kill victim signal
    end
  in
  let outcomes = Client.run_batch ~on_event c specs in
  Alcotest.(check bool) "the strike fired" true !struck;
  Alcotest.(check string) "metrics table byte-identical to undisturbed run"
    expected (daemon_table outcomes);
  (* the daemon is still serving: a fresh job completes normally *)
  (match Client.submit c (Proto.job_spec ~tag:"alive" (Proto.Wire_asm exit_asm)) with
   | Error m -> Alcotest.fail ("daemon stopped serving: " ^ m)
   | Ok _ -> (
     let rec wait () =
       match Client.next_event c with
       | Proto.Started _ -> wait ()
       | Proto.Finished _ -> ()
       | Proto.Job_failed f -> Alcotest.fail ("post-chaos job failed: " ^ f.kind)
     in
     wait ()));
  let stats = Client.stats c in
  let get k = match List.assoc_opt k stats with Some v -> v | None -> -1 in
  Alcotest.(check int) "every admitted job completed"
    (List.length specs + 1) (get "daemon/jobs-completed");
  Alcotest.(check int) "nothing left in flight" 0 (get "daemon/jobs-inflight");
  let scrape = Client.stats_full c in
  Alcotest.(check bool)
    (Printf.sprintf "restart counted under reason=%s" restart_reason)
    true
    (contains scrape
       (Printf.sprintf "ptaintd_worker_restarts_total{reason=\"%s\"} 1"
          restart_reason));
  Alcotest.(check bool) "disturbed job redelivered" true
    (contains scrape "ptaintd_redeliveries_total 1");
  Client.close c

(* SIGKILL: the worker vanishes (pipe EOF), its spinner is redelivered
   to the survivor and times out there exactly as it would have. *)
let test_sigkill_mid_campaign () =
  with_isolated_daemon (fun path pids ->
      chaos_campaign ~signal:Sys.sigkill ~restart_reason:"crash" path pids)

(* SIGSTOP: the worker is alive but frozen mid-dispatch.  No EOF, no
   heartbeat — the preemptive dispatch deadline (job timeout + grace)
   is what must fire, SIGKILLing the zombie and redelivering. *)
let test_sigstop_mid_campaign () =
  with_isolated_daemon (fun path pids ->
      chaos_campaign ~signal:Sys.sigstop ~restart_reason:"deadline" path pids)

(* A stopped *idle* worker has no dispatch to blow a deadline on; the
   idle-heartbeat tolerance is the only thing that can notice it. *)
let test_sigstop_idle_heartbeat () =
  with_isolated_daemon (fun path pids ->
      let c = Client.connect ~client:"idle" ~retries:3 path in
      Unix.kill (List.nth pids 1) Sys.sigstop;
      (* outlive the 2 s beat tolerance, then demand service *)
      ignore
        (wait_until ~timeout:10.0 ~what:"heartbeat restart" (fun () ->
             if
               contains (Client.stats_full c)
                 "ptaintd_worker_restarts_total{reason=\"heartbeat\"} 1"
             then Some ()
             else None));
      Alcotest.(check bool) "heartbeat miss counted" true
        (contains (Client.stats_full c) "ptaintd_heartbeat_misses_total 1");
      (match Client.run_batch c (List.init 4 exit_spec) with
       | outcomes
         when List.for_all
                (function Client.Done (Proto.Finished _) -> true | _ -> false)
                outcomes -> ()
       | _ -> Alcotest.fail "jobs failed after idle-worker restart");
      Client.close c)

let () =
  Alcotest.run "supervisor"
    [ ( "chaos",
        [ Alcotest.test_case "SIGKILL mid-campaign" `Quick test_sigkill_mid_campaign;
          Alcotest.test_case "SIGSTOP mid-campaign" `Quick test_sigstop_mid_campaign;
          Alcotest.test_case "SIGSTOP idle worker" `Quick test_sigstop_idle_heartbeat ] ) ]
