(* ptaintd: the wire codec must round-trip every frame type and
   reject every corruption with a typed error, and the server must
   survive its clients — hostile ones included.  The loopback tests
   run a real server on a real Unix-domain socket with the event loop
   on its own domain. *)

module Proto = Ptaint_daemon.Proto
module Client = Ptaint_daemon.Client
module Server = Ptaint_daemon.Server
module Fi = Ptaint_fi.Fi

let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* --- codec: round-trips ---------------------------------------------- *)

let spec_full =
  Proto.job_spec ~tag:"exploit-42" ~policy:"control-only"
    ~argv:[ "victim"; "--flag" ]
    ~env:[ ("HOME", "/"); ("TERM", "dumb") ]
    ~stdin:(String.make 300 'A' ^ "\x00\xff")
    ~sessions:[ [ "GET / HTTP/1.0"; "Host: x" ]; [] ]
    ~max_instructions:123_456_789
    ~injections:
      [ { Fi.at = 1000; fault = Fi.Flip_data { addr = 0x10000000; bit = 3 } };
        { Fi.at = 2000; fault = Fi.Flip_reg { slot = 4; bit = 31 } };
        { Fi.at = 3000; fault = Fi.Taint_loss { addr = 0x10000040; len = 64 } };
        { Fi.at = 4000; fault = Fi.Spurious_taint { addr = 16; len = 1 } };
        { Fi.at = 5000; fault = Fi.Reg_taint_loss { slot = 29 } };
        { Fi.at = 6000; fault = Fi.Reg_spurious_taint { slot = 31 } };
        { Fi.at = 7000; fault = Fi.Taint_wipe };
        { Fi.at = 8000; fault = Fi.Stuck_clean { addr = 0x7fff0000; len = 16384 } } ]
    ~timeout:2.5
    (Proto.Wire_c "int main() { return 0; }")

let spec_traced =
  Proto.job_spec ~tag:"traced" ~trace:(0x1234_5678_9abc_def0, 17)
    (Proto.Wire_asm ".text\nmain: j main\n")

let requests =
  [ ("hello", Proto.Hello { client = "test" });
    ("submit-full", Proto.Submit spec_full);
    ("submit-minimal", Proto.Submit (Proto.job_spec ~tag:"" (Proto.Wire_asm "")));
    ("submit-traced", Proto.Submit spec_traced);
    ("stats", Proto.Stats);
    ("stats-full", Proto.Stats_full);
    ("ping", Proto.Ping "payload\x00\x01");
    ("quit", Proto.Quit) ]

let responses =
  [ ("hello-ok", Proto.Hello_ok { server_version = 1; banner = "ptaintd" });
    ("accepted", Proto.Accepted { id = max_int / 2; tag = "t" });
    ("rejected", Proto.Rejected { tag = "t"; reason = "queue full (256 jobs in flight)" });
    ("started", Proto.Job_event (Proto.Started { id = 1 }));
    ( "finished",
      Proto.Job_event
        (Proto.Finished
           { id = 7; tag = "a/b"; outcome = "exited with status 0"; exit_code = 0;
             instructions = 1_000_000_007; syscalls = 42;
             policy_label = "pointer taintedness"; cache_hit = true;
             counters = [ ("jobs", 1); ("instructions", 1_000_000_007) ];
             stdout = "hello\nworld\n"; trace = None }) );
    ( "finished-traced",
      Proto.Job_event
        (Proto.Finished
           { id = 9; tag = "t"; outcome = "exited with status 0"; exit_code = 0;
             instructions = 3; syscalls = 1; policy_label = "pointer taintedness";
             cache_hit = false; counters = [ ("jobs", 1) ]; stdout = "";
             trace = Some (max_int, max_int) }) );
    ( "failed",
      Proto.Job_event
        (Proto.Job_failed
           { id = 8; tag = "x"; kind = "timeout"; message = "Sim.Timeout";
             policy_label = "no protection"; counters = [ ("jobs", 1); ("timeouts", 1) ];
             trace = Some (0x0fed_cba9_8765_4321, 2) }) );
    ("stats-ok", Proto.Stats_ok [ ("daemon/cache-hit", 3); ("daemon/cache-miss", 0) ]);
    ( "stats-full-ok",
      Proto.Stats_full_ok
        "# TYPE ptaintd_jobs_total counter\nptaintd_jobs_total{outcome=\"exited\"} 3\n" );
    ("pong", Proto.Pong "");
    ("error", Proto.Error_frame "bad magic (not a ptaintd stream)") ]

let test_request_roundtrip () =
  List.iter
    (fun (name, req) ->
      let encoded = Proto.encode_request req in
      match Proto.decode_request encoded with
      | Ok (Some (decoded, consumed)) ->
        Alcotest.(check int) (name ^ ": consumed") (String.length encoded) consumed;
        Alcotest.(check bool) (name ^ ": equal") true (decoded = req)
      | Ok None -> Alcotest.fail (name ^ ": decoder wants more bytes")
      | Error e -> Alcotest.fail (name ^ ": " ^ Proto.error_message e))
    requests

let test_response_roundtrip () =
  List.iter
    (fun (name, resp) ->
      let encoded = Proto.encode_response resp in
      match Proto.decode_response encoded with
      | Ok (Some (decoded, consumed)) ->
        Alcotest.(check int) (name ^ ": consumed") (String.length encoded) consumed;
        Alcotest.(check bool) (name ^ ": equal") true (decoded = resp)
      | Ok None -> Alcotest.fail (name ^ ": decoder wants more bytes")
      | Error e -> Alcotest.fail (name ^ ": " ^ Proto.error_message e))
    responses

(* two frames back to back: the decoder consumes exactly one *)
let test_two_frames () =
  let a = Proto.encode_request (Proto.Ping "one") in
  let b = Proto.encode_request Proto.Quit in
  match Proto.decode_request (a ^ b) with
  | Ok (Some (Proto.Ping "one", consumed)) ->
    Alcotest.(check int) "first frame only" (String.length a) consumed;
    (match Proto.decode_request b with
     | Ok (Some (Proto.Quit, _)) -> ()
     | _ -> Alcotest.fail "second frame")
  | _ -> Alcotest.fail "first frame"

(* every strict prefix of a valid frame is Ok None, never an error —
   this is what makes a slowloris client harmless *)
let test_incomplete_is_not_an_error () =
  let frame = Proto.encode_request (Proto.Submit spec_full) in
  for n = 0 to String.length frame - 1 do
    match Proto.decode_request (String.sub frame 0 n) with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.fail (Printf.sprintf "prefix %d decoded a frame" n)
    | Error e ->
      Alcotest.fail (Printf.sprintf "prefix %d: %s" n (Proto.error_message e))
  done

(* --- codec: typed rejection of hostile bytes ------------------------- *)

let expect_error name buf pred =
  match Proto.decode_request buf with
  | Error e when pred e -> ()
  | Error e -> Alcotest.fail (name ^ ": wrong error: " ^ Proto.error_message e)
  | Ok _ -> Alcotest.fail (name ^ ": accepted hostile bytes")

let test_bad_magic () =
  expect_error "garbage" "GET / HTTP/1.0\r\n\r\n" (function Proto.Bad_magic -> true | _ -> false);
  expect_error "second byte" "PX\x01\x01\x00\x00\x00\x00" (function Proto.Bad_magic -> true | _ -> false)

let test_bad_version () =
  let f = Bytes.of_string (Proto.encode_request Proto.Quit) in
  Bytes.set f 2 '\x63';
  expect_error "version 99" (Bytes.to_string f)
    (function Proto.Bad_version 99 -> true | _ -> false)

let test_bad_tag () =
  let f = Bytes.of_string (Proto.encode_request Proto.Quit) in
  Bytes.set f 3 '\x7f';
  expect_error "tag 0x7f" (Bytes.to_string f)
    (function Proto.Bad_tag 0x7f -> true | _ -> false)

let test_oversized () =
  let b = Bytes.of_string (Proto.encode_request (Proto.Ping "x")) in
  (* announce a 64 MiB payload in the header *)
  Bytes.set b 4 '\x04'; Bytes.set b 5 '\x00'; Bytes.set b 6 '\x00'; Bytes.set b 7 '\x00';
  expect_error "64MiB announced" (Bytes.to_string b)
    (function Proto.Oversized n -> n = 64 * 1024 * 1024 | _ -> false)

let malformed = function Proto.Malformed _ -> true | _ -> false

let test_trailing_garbage () =
  (* valid Quit frame claiming a 4-byte payload of junk *)
  let f = Bytes.of_string (Proto.encode_request Proto.Quit) in
  Bytes.set f 7 '\x04';
  expect_error "trailing junk" (Bytes.to_string f ^ "ABCD") malformed

let test_truncated_payload () =
  (* a Ping whose inner string length points past the payload end *)
  let good = Proto.encode_request (Proto.Ping "abcd") in
  let f = Bytes.of_string good in
  (* payload starts at offset 8 with the u32 string length; inflate it
     while the frame length in the header stays truthful *)
  Bytes.set f 8 '\x00';
  Bytes.set f 11 '\xff';
  expect_error "inner length lies" (Bytes.to_string f) malformed

let test_unknown_fault_tag () =
  let spec = Proto.job_spec ~tag:"t" ~injections:[ { Fi.at = 1; fault = Fi.Taint_wipe } ]
      (Proto.Wire_asm "") in
  let f = Bytes.of_string (Proto.encode_request (Proto.Submit spec)) in
  (* layout ends [...at:i64][fault tag][timeout option = 0]: the
     Taint_wipe tag (6) sits second from the end — flip it to 250 *)
  let idx = Bytes.length f - 2 in
  Alcotest.(check char) "located fault tag" '\x06' (Bytes.get f idx);
  Bytes.set f idx '\xfa';
  expect_error "fault tag 250" (Bytes.to_string f) malformed

(* --- version tolerance ----------------------------------------------- *)

(* A traceless, keyless, deadline-free v3 frame is byte-identical to
   its v1 rendering, so replaying it with the version byte set to 1
   is exactly what a v1 peer would send — it must decode, with every
   optional trailing field [None]. *)
let as_v1 frame =
  let b = Bytes.of_string frame in
  Alcotest.(check char) "encoder stamps v3" '\x03' (Bytes.get b 2);
  Bytes.set b 2 '\x01';
  Bytes.to_string b

let test_v1_frames_decode () =
  List.iter
    (fun (name, req) ->
      match Proto.decode_request (as_v1 (Proto.encode_request req)) with
      | Ok (Some (decoded, _)) ->
        Alcotest.(check bool) (name ^ ": v1 equal") true (decoded = req)
      | Ok None -> Alcotest.fail (name ^ ": v1 decoder wants more bytes")
      | Error e -> Alcotest.fail (name ^ ": v1 " ^ Proto.error_message e))
    [ ("hello", Proto.Hello { client = "old" });
      ("submit", Proto.Submit spec_full);
      ("quit", Proto.Quit) ]

let test_traceless_spec_has_no_trailer () =
  (* the trace field must cost zero bytes when absent: same payload
     length with and without the version byte games above, and a
     traced spec strictly longer *)
  let bare =
    Proto.encode_request (Proto.Submit (Proto.job_spec ~tag:"exit" (Proto.Wire_asm "")))
  in
  let traced =
    Proto.encode_request
      (Proto.Submit (Proto.job_spec ~tag:"exit" ~trace:(1, 1) (Proto.Wire_asm "")))
  in
  Alcotest.(check int) "trace trailer is 17 bytes"
    (String.length bare + 17) (String.length traced)

let test_future_version_rejected () =
  let f = Bytes.of_string (Proto.encode_request Proto.Quit) in
  Bytes.set f 2 '\x04';
  match Proto.decode_request (Bytes.to_string f) with
  | Error (Proto.Bad_version 4) -> ()
  | _ -> Alcotest.fail "version 4 must be rejected"

(* v3 trailing-optional cascade: idem and deadline round-trip, and a
   deadline without an idem key pays the one explicit presence-0 byte
   for the absent fields before it — never more. *)
let test_idem_deadline_roundtrip () =
  let spec =
    Proto.job_spec ~tag:"keyed" ~idem:"campaign#7" ~deadline:1.5
      (Proto.Wire_asm "")
  in
  match Proto.decode_request (Proto.encode_request (Proto.Submit spec)) with
  | Ok (Some (Proto.Submit s, _)) ->
    Alcotest.(check (option string)) "idem" (Some "campaign#7") s.Proto.spec_idem;
    Alcotest.(check (option (float 1e-9))) "deadline" (Some 1.5) s.Proto.spec_deadline
  | _ -> Alcotest.fail "keyed spec did not round-trip"

let test_v3_trailer_sizes () =
  let enc spec = String.length (Proto.encode_request (Proto.Submit spec)) in
  let bare = enc (Proto.job_spec ~tag:"t" (Proto.Wire_asm "")) in
  (* idem only: presence-0 for trace, then Some + len + key *)
  let keyed = enc (Proto.job_spec ~tag:"t" ~idem:"k" (Proto.Wire_asm "")) in
  Alcotest.(check int) "idem-only trailer" (bare + 1 + 5 + 1) keyed;
  (* deadline only: presence-0 for trace and idem, then Some + i64 *)
  let dead = enc (Proto.job_spec ~tag:"t" ~deadline:1.0 (Proto.Wire_asm "")) in
  Alcotest.(check int) "deadline-only trailer" (bare + 1 + 1 + 9) dead

(* --- job spec <-> Job.t ---------------------------------------------- *)

let test_job_of_spec () =
  match Proto.job_of_spec spec_full with
  | Error m -> Alcotest.fail m
  | Ok job ->
    Alcotest.(check string) "tag" "exploit-42" job.Ptaint_campaign.Job.tag;
    Alcotest.(check int) "injections" 8 (List.length job.Ptaint_campaign.Job.injections);
    Alcotest.(check (option (float 1e-9))) "timeout" (Some 2.5) job.Ptaint_campaign.Job.timeout;
    let c = job.Ptaint_campaign.Job.config in
    Alcotest.(check (list string)) "argv" [ "victim"; "--flag" ] c.Ptaint_sim.Sim.argv;
    Alcotest.(check int) "fuel" 123_456_789 c.Ptaint_sim.Sim.max_instructions;
    (* the canonical label must come from the policy, as in batch mode *)
    Alcotest.(check string) "derived label" "control-data only"
      (Ptaint_campaign.Campaign.label_of_policy c.Ptaint_sim.Sim.policy)

let test_job_trace_roundtrip () =
  match Proto.job_of_spec spec_traced with
  | Error m -> Alcotest.fail m
  | Ok job ->
    Alcotest.(check bool) "trace survives job_of_spec" true
      (job.Ptaint_campaign.Job.trace = Some (0x1234_5678_9abc_def0, 17));
    (match Proto.spec_of_job job with
     | Error m -> Alcotest.fail m
     | Ok spec ->
       Alcotest.(check bool) "trace survives spec_of_job" true
         (spec.Proto.spec_trace = Some (0x1234_5678_9abc_def0, 17)))

let test_job_of_spec_bad_policy () =
  match Proto.job_of_spec (Proto.job_spec ~tag:"t" ~policy:"nonsense" (Proto.Wire_asm "")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown policy label"

(* --- loopback server ------------------------------------------------- *)

let exit_asm = ".text\nmain: li $v0, 1\n li $a0, 0\n syscall\n"
let spin_asm = ".text\nmain: j main\n"

(* A spinner job that only the wall-clock watchdog can stop: the
   default fuel budget is finite, and a fast engine can burn through
   it before a sub-second timeout fires. *)
let spin_spec ~timeout =
  Proto.job_spec ~tag:"spin" ~timeout ~max_instructions:max_int
    (Proto.Wire_asm spin_asm)

let with_server ?(max_queue = 64) ?(max_inflight = 8) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ptaintd-test-%d.sock" (Unix.getpid ()))
  in
  let cfg =
    { (Server.default_config ~socket_path:path) with
      Server.domains = Some 2; max_queue; max_inflight }
  in
  let server = Server.create cfg in
  let d = Domain.spawn (fun () -> Server.serve server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join d;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f path server)

let exit_spec ?(tag = "exit") () = Proto.job_spec ~tag (Proto.Wire_asm exit_asm)

let rec wait_terminal c =
  match Client.next_event c with
  | Proto.Started _ -> wait_terminal c
  | e -> e

let test_loopback_submit_stream () =
  with_server (fun path _server ->
      let c = Client.connect ~client:"test" path in
      Alcotest.(check string) "banner" "ptaintd" (Client.banner c);
      Alcotest.(check string) "ping echoes" "xyzzy" (Client.ping c "xyzzy");
      (match Client.submit c (exit_spec ()) with
       | Error m -> Alcotest.fail ("rejected: " ^ m)
       | Ok id -> (
         match wait_terminal c with
         | Proto.Finished f ->
           Alcotest.(check int) "event id" id f.id;
           Alcotest.(check string) "outcome" "exited with status 0" f.outcome;
           Alcotest.(check int) "exit code" 0 f.exit_code;
           Alcotest.(check int) "instructions" 3 f.instructions;
           Alcotest.(check bool) "first run misses the cache" false f.cache_hit;
           Alcotest.(check (list (pair string int)))
             "streamed counter deltas"
             [ ("jobs", 1); ("instructions", 3); ("syscalls", 1);
               ("tainted loads", 0); ("tainted stores", 0) ]
             f.counters
         | _ -> Alcotest.fail "expected Finished"));
      (* same program again: must boot from the snapshot cache *)
      (match Client.submit c (exit_spec ()) with
       | Error m -> Alcotest.fail ("rejected: " ^ m)
       | Ok _ -> (
         match wait_terminal c with
         | Proto.Finished f ->
           Alcotest.(check bool) "second run hits the cache" true f.cache_hit;
           Alcotest.(check int) "identical result" 3 f.instructions
         | _ -> Alcotest.fail "expected Finished"));
      let stats = Client.stats c in
      let get k = match List.assoc_opt k stats with Some v -> v | None -> -1 in
      Alcotest.(check int) "one cache hit" 1 (get "daemon/cache-hit");
      Alcotest.(check int) "one cache miss" 1 (get "daemon/cache-miss");
      Alcotest.(check int) "two jobs completed" 2 (get "daemon/jobs-completed");
      Client.close c)

let test_loopback_batch_and_failures () =
  with_server (fun path _server ->
      let c = Client.connect ~client:"test" path in
      let specs =
        [ exit_spec ~tag:"a" ();
          Proto.job_spec ~tag:"malformed" (Proto.Wire_asm ".data\nx: .space -4\n");
          spin_spec ~timeout:0.2;
          exit_spec ~tag:"b" () ]
      in
      match Client.run_batch c specs with
      | [ Client.Done (Proto.Finished a);
          Client.Done (Proto.Job_failed bad);
          Client.Done (Proto.Job_failed spin);
          Client.Done (Proto.Finished b) ] ->
        Alcotest.(check string) "a" "a" a.tag;
        Alcotest.(check string) "b survives its neighbours" "b" b.tag;
        Alcotest.(check string) "malformed source classified" "loader error" bad.kind;
        Alcotest.(check string) "wire timeout arms the watchdog" "timeout" spin.kind;
        Client.close c
      | _ -> Alcotest.fail "unexpected batch shape")

(* concurrent clients: two connections submitting interleaved batches *)
(* the correlation id travels submit -> worker -> terminal event, and
   from there into the JSONL result sink *)
let test_loopback_trace_roundtrip () =
  with_server (fun path _server ->
      let c = Client.connect ~client:"test" path in
      let trace = (0x0abc_def0_1234_5678, 3) in
      let spec =
        Proto.job_spec ~tag:"traced" ~trace (Proto.Wire_asm exit_asm)
      in
      (match Client.submit c spec with
       | Error m -> Alcotest.fail ("rejected: " ^ m)
       | Ok _ -> (
         match wait_terminal c with
         | Proto.Finished f ->
           Alcotest.(check bool) "event carries the trace" true
             (f.trace = Some trace);
           let s =
             { Ptaint_campaign.Campaign.s_index = 1; s_name = f.tag;
               s_label = f.policy_label; s_outcome = "exited";
               s_counters = f.counters; s_failed = false; s_violation = false;
               s_detected = false; s_alert_pc = None;
               s_instructions = f.instructions; s_syscalls = f.syscalls;
               s_attempts = 1; s_trace = f.trace }
           in
           let line = Ptaint_campaign.Campaign.jsonl_of_summary s in
           Alcotest.(check bool) "jsonl carries the trace" true
             (let needle = "\"trace\":\"0abcdef012345678\",\"span\":3" in
              let n = String.length needle and l = String.length line in
              let rec scan i =
                i + n <= l && (String.sub line i n = needle || scan (i + 1))
              in
              scan 0);
           let bare = { s with s_trace = None } in
           let bare_line = Ptaint_campaign.Campaign.jsonl_of_summary bare in
           Alcotest.(check bool) "traceless jsonl keeps the historic shape" true
             (String.length bare_line < String.length line
              && not (let needle = "\"trace\":" in
                      let n = String.length needle and l = String.length bare_line in
                      let rec scan i =
                        i + n <= l && (String.sub bare_line i n = needle || scan (i + 1))
                      in
                      scan 0))
         | _ -> Alcotest.fail "expected Finished"));
      Client.close c)

let test_loopback_stats_full () =
  with_server (fun path _server ->
      let c = Client.connect ~client:"test" path in
      (match Client.submit c (exit_spec ()) with
       | Error m -> Alcotest.fail ("rejected: " ^ m)
       | Ok _ -> ignore (wait_terminal c));
      let text = Client.stats_full c in
      let has needle =
        let n = String.length needle and l = String.length text in
        let rec scan i = i + n <= l && (String.sub text i n = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "jobs_total family" true
        (has "# TYPE ptaintd_jobs_total counter");
      Alcotest.(check bool) "outcome label" true
        (has "ptaintd_jobs_total{outcome=\"exited\"} 1");
      Alcotest.(check bool) "cache gauges" true (has "ptaintd_cache_misses 1");
      Alcotest.(check bool) "latency histogram" true
        (has "ptaintd_job_duration_us_count 1");
      (* robustness families are pre-registered: they must render (at
         zero) even though no worker ever died in this server *)
      Alcotest.(check bool) "worker restarts family" true
        (has "# TYPE ptaintd_worker_restarts_total counter");
      Alcotest.(check bool) "restart reason children" true
        (has "ptaintd_worker_restarts_total{reason=\"crash\"} 0"
         && has "ptaintd_worker_restarts_total{reason=\"heartbeat\"} 0"
         && has "ptaintd_worker_restarts_total{reason=\"deadline\"} 0");
      Alcotest.(check bool) "redeliveries family" true
        (has "ptaintd_redeliveries_total 0");
      Alcotest.(check bool) "heartbeat misses family" true
        (has "ptaintd_heartbeat_misses_total 0");
      Alcotest.(check bool) "shed family" true
        (has "ptaintd_jobs_shed_total{reason=\"deadline\"} 0");
      Alcotest.(check bool) "idem replays family" true
        (has "ptaintd_idem_replays_total 0");
      (* A guest that loops one block past the promotion threshold must
         surface translation-tier events in the scrape. *)
      let loop_asm =
        ".text\nmain: li $t0, 64\nloop: addi $t0, $t0, -1\n bgtz $t0, loop\n \
         li $v0, 1\n li $a0, 0\n syscall\n"
      in
      (match Client.submit c (Proto.job_spec ~tag:"loop" (Proto.Wire_asm loop_asm)) with
       | Error m -> Alcotest.fail ("rejected: " ^ m)
       | Ok _ -> ignore (wait_terminal c));
      let text2 = Client.stats_full c in
      let has2 needle =
        let n = String.length needle and l = String.length text2 in
        let rec scan i = i + n <= l && (String.sub text2 i n = needle || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) "superblock family" true
        (has2 "# TYPE ptaintd_superblock_events_total counter");
      Alcotest.(check bool) "superblock promotions counted" true
        (has2 "ptaintd_superblock_events_total{event=\"promoted\"}");
      Client.close c)

let test_loopback_two_clients () =
  with_server (fun path _server ->
      let c1 = Client.connect ~client:"one" path in
      let c2 = Client.connect ~client:"two" path in
      let ids1 = List.map (fun () -> Client.submit c1 (exit_spec ())) [ (); (); () ] in
      let ids2 = List.map (fun () -> Client.submit c2 (exit_spec ())) [ (); (); () ] in
      Alcotest.(check int) "c1 all accepted" 3
        (List.length (List.filter Result.is_ok ids1));
      Alcotest.(check int) "c2 all accepted" 3
        (List.length (List.filter Result.is_ok ids2));
      let count_finished c n =
        let seen = ref 0 in
        while !seen < n do
          match wait_terminal c with
          | Proto.Finished _ -> incr seen
          | _ -> Alcotest.fail "unexpected failure"
        done
      in
      count_finished c1 3;
      count_finished c2 3;
      Client.close c1;
      Client.close c2)

let test_admission_quota () =
  (* max_inflight 1: the second concurrent submission must bounce *)
  with_server ~max_inflight:1 (fun path _server ->
      let c = Client.connect ~client:"test" path in
      (match Client.submit c (spin_spec ~timeout:1.0) with
       | Ok _ -> ()
       | Error m -> Alcotest.fail ("first submission rejected: " ^ m));
      (match Client.submit c (exit_spec ()) with
       | Error reason ->
         Alcotest.(check bool) "quota message" true
           (String.length reason > 0)
       | Ok _ -> Alcotest.fail "quota not enforced");
      (* drain the spinner so shutdown is quick *)
      (match wait_terminal c with
       | Proto.Job_failed f -> Alcotest.(check string) "spinner timed out" "timeout" f.kind
       | _ -> Alcotest.fail "expected the spinner to time out");
      Client.close c)

(* --- hostile clients ------------------------------------------------- *)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_all fd =
  let b = Buffer.create 64 in
  let chunk = Bytes.create 4096 in
  (try
     let rec go () =
       match Unix.read fd chunk 0 4096 with
       | 0 -> ()
       | n ->
         Buffer.add_subbytes b chunk 0 n;
         go ()
     in
     go ()
   with Unix.Unix_error _ -> ());
  Buffer.contents b

let test_hostile_clients () =
  with_server (fun path _server ->
      (* (a) garbage bytes: server answers Error_frame and closes *)
      let fd = raw_connect path in
      ignore (Unix.write_substring fd "GET / HTTP/1.0\r\n\r\n" 0 18);
      let reply = read_all fd in
      (match Proto.decode_response reply with
       | Ok (Some (Proto.Error_frame m, _)) ->
         Alcotest.(check bool) "names bad magic" true
           (String.length m > 0)
       | _ -> Alcotest.fail "expected Error_frame for garbage");
      Unix.close fd;
      (* (b) oversized announcement: rejected from the header alone *)
      let fd = raw_connect path in
      let hdr = Bytes.of_string (Proto.encode_request Proto.Quit) in
      Bytes.set hdr 4 '\x7f';
      ignore (Unix.write fd hdr 0 (Bytes.length hdr));
      (match Proto.decode_response (read_all fd) with
       | Ok (Some (Proto.Error_frame _, _)) -> ()
       | _ -> Alcotest.fail "expected Error_frame for oversized");
      Unix.close fd;
      (* (c) slowloris: half a frame, then silence, then disconnect —
         must not block the loop or leak a job *)
      let fd = raw_connect path in
      let frame = Proto.encode_request (Proto.Submit (exit_spec ())) in
      ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
      (* (d) while the half-frame hangs, a well-behaved client is served *)
      let c = Client.connect ~client:"healthy" path in
      (match Client.submit c (exit_spec ()) with
       | Ok _ -> (
         match wait_terminal c with
         | Proto.Finished _ -> ()
         | _ -> Alcotest.fail "healthy client's job failed")
       | Error m -> Alcotest.fail ("healthy client rejected: " ^ m));
      Unix.close fd;
      (* (e) disconnect mid-job: submit, vanish before the result *)
      let fd = raw_connect path in
      let hello = Proto.encode_request (Proto.Hello { client = "rude" }) in
      ignore (Unix.write_substring fd hello 0 (String.length hello));
      let submit = Proto.encode_request (Proto.Submit (exit_spec ~tag:"orphan" ())) in
      ignore (Unix.write_substring fd submit 0 (String.length submit));
      Unix.close fd;
      (* the orphan must be admitted, complete server-side, and the
         server keep serving; poll for both to dodge the admission race *)
      let get stats k = match List.assoc_opt k stats with Some v -> v | None -> -1 in
      let rec wait_for_drain tries =
        if tries = 0 then Alcotest.fail "orphan job never admitted + completed"
        else
          let stats = Client.stats c in
          if get stats "daemon/jobs-submitted" >= 2
             && get stats "daemon/jobs-inflight" = 0
          then ()
          else begin
            Unix.sleepf 0.05;
            wait_for_drain (tries - 1)
          end
      in
      wait_for_drain 100;
      (match Client.submit c (exit_spec ()) with
       | Ok _ -> (
         match wait_terminal c with
         | Proto.Finished _ -> ()
         | _ -> Alcotest.fail "server stopped serving after hostile clients")
       | Error m -> Alcotest.fail ("server rejects after hostile clients: " ^ m));
      Client.close c)

(* --- idempotency and deadline shedding ------------------------------- *)

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

(* The client-retry story end to end: a keyed job whose submitter's
   connection dies mid-run is resubmitted from a fresh connection,
   attaches to the live admission (same job id, no second run), and
   the retry receives the one and only terminal event. *)
let test_idempotent_resubmit_after_drop () =
  with_server (fun path _server ->
      let keyed_spin =
        Proto.job_spec ~tag:"spin" ~timeout:0.5 ~max_instructions:max_int
          ~idem:"retry-key-1" (Proto.Wire_asm spin_asm)
      in
      let c1 = Client.connect ~client:"dropper" path in
      let id1 =
        match Client.submit c1 keyed_spin with
        | Ok id -> id
        | Error m -> Alcotest.fail ("first submission rejected: " ^ m)
      in
      (* connection dies while the job is still spinning *)
      Client.close c1;
      let c2 = Client.connect ~client:"retrier" path in
      (match Client.submit c2 keyed_spin with
       | Ok id2 -> Alcotest.(check int) "retry attaches to the admission" id1 id2
       | Error m -> Alcotest.fail ("resubmission rejected: " ^ m));
      (match wait_terminal c2 with
       | Proto.Job_failed f ->
         Alcotest.(check int) "terminal event has the original id" id1 f.id;
         Alcotest.(check string) "watchdog classified" "timeout" f.kind
       | _ -> Alcotest.fail "expected the spinner's timeout");
      let stats = Client.stats c2 in
      let get k = match List.assoc_opt k stats with Some v -> v | None -> -1 in
      Alcotest.(check int) "the job ran exactly once" 1 (get "daemon/jobs-submitted");
      Alcotest.(check int) "and completed exactly once" 1 (get "daemon/jobs-completed");
      (* replay-after-done: a key whose job already finished answers
         from the record — same id, a verbatim terminal event, and
         still only one run in the counters *)
      let keyed_exit =
        Proto.job_spec ~tag:"once" ~idem:"retry-key-2" (Proto.Wire_asm exit_asm)
      in
      let id3 =
        match Client.submit c2 keyed_exit with
        | Ok id -> id
        | Error m -> Alcotest.fail ("keyed exit rejected: " ^ m)
      in
      let first_id, first_outcome, first_counters =
        match wait_terminal c2 with
        | Proto.Finished f -> (f.id, f.outcome, f.counters)
        | _ -> Alcotest.fail "expected Finished"
      in
      (match Client.submit c2 keyed_exit with
       | Ok id -> Alcotest.(check int) "replay returns the original id" id3 id
       | Error m -> Alcotest.fail ("replay rejected: " ^ m));
      (match wait_terminal c2 with
       | Proto.Finished f ->
         Alcotest.(check int) "replayed event id" first_id f.id;
         Alcotest.(check bool) "replayed event verbatim" true
           (f.counters = first_counters && f.outcome = first_outcome)
       | _ -> Alcotest.fail "expected the replayed Finished");
      let stats = Client.stats c2 in
      let get k = match List.assoc_opt k stats with Some v -> v | None -> -1 in
      Alcotest.(check int) "replay admitted nothing" 2 (get "daemon/jobs-submitted");
      Alcotest.(check bool) "replays counted" true
        (contains (Client.stats_full c2) "ptaintd_idem_replays_total 2");
      Client.close c2)

let test_deadline_shed () =
  with_server (fun path _server ->
      let c = Client.connect ~client:"test" path in
      (* no duration evidence yet: a tight deadline is still admitted *)
      (match
         Client.submit c
           (Proto.job_spec ~tag:"first" ~deadline:1e-6 (Proto.Wire_asm exit_asm))
       with
       | Ok _ -> ignore (wait_terminal c)
       | Error m -> Alcotest.fail ("empty-histogram submission rejected: " ^ m));
      (* now the histogram has a mean; an impossible deadline is shed
         at admission with a reasoned rejection *)
      (match
         Client.submit c
           (Proto.job_spec ~tag:"doomed" ~deadline:1e-9 (Proto.Wire_asm exit_asm))
       with
       | Error reason ->
         Alcotest.(check bool) "reason names the deadline" true
           (contains reason "deadline")
       | Ok _ -> Alcotest.fail "impossible deadline admitted");
      (* a generous deadline still passes *)
      (match
         Client.submit c
           (Proto.job_spec ~tag:"fine" ~deadline:60.0 (Proto.Wire_asm exit_asm))
       with
       | Ok _ -> ignore (wait_terminal c)
       | Error m -> Alcotest.fail ("generous deadline rejected: " ^ m));
      Alcotest.(check bool) "shed counted" true
        (contains (Client.stats_full c)
           "ptaintd_jobs_shed_total{reason=\"deadline\"} 1");
      Client.close c)

(* graceful drain: submissions in flight at shutdown still complete *)
let test_graceful_drain () =
  with_server (fun path server ->
      let c = Client.connect ~client:"test" path in
      let accepted =
        List.filter_map
          (fun i ->
            match Client.submit c (exit_spec ~tag:(string_of_int i) ()) with
            | Ok id -> Some id
            | Error _ -> None)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Server.shutdown server;
      (* all accepted jobs must still reach a terminal event *)
      let finished = ref 0 in
      (try
         while !finished < List.length accepted do
           match Client.next_event c with
           | Proto.Finished _ | Proto.Job_failed _ -> incr finished
           | Proto.Started _ -> ()
         done
       with Client.Protocol_error _ -> ());
      Alcotest.(check int) "every admitted job drained" (List.length accepted) !finished;
      Client.close c)

let () =
  Alcotest.run "daemon"
    [ ( "codec",
        [ Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "two frames" `Quick test_two_frames;
          Alcotest.test_case "incomplete prefixes" `Quick test_incomplete_is_not_an_error;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad version" `Quick test_bad_version;
          Alcotest.test_case "bad tag" `Quick test_bad_tag;
          Alcotest.test_case "oversized" `Quick test_oversized;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "truncated payload" `Quick test_truncated_payload;
          Alcotest.test_case "unknown fault tag" `Quick test_unknown_fault_tag ] );
      ( "compat",
        [ Alcotest.test_case "v1 frames decode" `Quick test_v1_frames_decode;
          Alcotest.test_case "traceless has no trailer" `Quick test_traceless_spec_has_no_trailer;
          Alcotest.test_case "future version rejected" `Quick test_future_version_rejected;
          Alcotest.test_case "idem/deadline round-trip" `Quick test_idem_deadline_roundtrip;
          Alcotest.test_case "v3 trailer sizes" `Quick test_v3_trailer_sizes ] );
      ( "job-spec",
        [ Alcotest.test_case "spec to Job.t" `Quick test_job_of_spec;
          Alcotest.test_case "trace round-trip" `Quick test_job_trace_roundtrip;
          Alcotest.test_case "bad policy label" `Quick test_job_of_spec_bad_policy ] );
      ( "loopback",
        [ Alcotest.test_case "submit and stream" `Quick test_loopback_submit_stream;
          Alcotest.test_case "batch with failures" `Quick test_loopback_batch_and_failures;
          Alcotest.test_case "trace round-trip" `Quick test_loopback_trace_roundtrip;
          Alcotest.test_case "stats-full scrape" `Quick test_loopback_stats_full;
          Alcotest.test_case "two clients" `Quick test_loopback_two_clients;
          Alcotest.test_case "admission quota" `Quick test_admission_quota ] );
      ( "robustness",
        [ Alcotest.test_case "idempotent resubmit after drop" `Quick
            test_idempotent_resubmit_after_drop;
          Alcotest.test_case "deadline shed" `Quick test_deadline_shed ] );
      ( "hostile",
        [ Alcotest.test_case "garbage, oversize, slowloris, vanish" `Quick test_hostile_clients;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain ] ) ]
