(* Table 3: the six SPEC-like workloads must run to a verified clean
   exit with every input byte tainted and zero alerts — and the
   ablation must show why. *)

open Ptaint_workloads

let expect_clean name (row : Workload.row) =
  (match row.Workload.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o ->
     Alcotest.failf "%s: expected clean exit, got %a (stdout: %s)" name
       Ptaint_sim.Sim.pp_outcome o (String.escaped row.Workload.stdout));
  Alcotest.(check int) (name ^ ": alerts") 0 row.Workload.alerts;
  Alcotest.(check bool) (name ^ ": consumed input") true (row.Workload.input_bytes > 0);
  Alcotest.(check bool) (name ^ ": executed work") true (row.Workload.instructions > 100_000)

let self_check name (row : Workload.row) needle =
  let rec has i =
    i + String.length needle <= String.length row.Workload.stdout
    && (String.sub row.Workload.stdout i (String.length needle) = needle || has (i + 1))
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: stdout contains %S (got %S)" name needle row.Workload.stdout)
    true (has 0)

let test_workload w needle () =
  let row = Workload.run w in
  expect_clean w.Workload.name row;
  self_check w.Workload.name row needle

let test_deterministic () =
  let a = Workload.run Workload.parser in
  let b = Workload.run Workload.parser in
  Alcotest.(check string) "same stdout" a.Workload.stdout b.Workload.stdout;
  Alcotest.(check int) "same instruction count" a.Workload.instructions b.Workload.instructions

let test_ablation_compare_rule () =
  (* Without the compare-untaint rule most workloads false-positive:
     validated sizes/indices stay tainted and reach addresses. *)
  let policy = { Ptaint_cpu.Policy.default with Ptaint_cpu.Policy.compare_untaints = false } in
  let fps =
    List.length
      (List.filter
         (fun w -> (Workload.run ~policy w).Workload.alerts > 0)
         Workload.all)
  in
  Alcotest.(check bool)
    (Printf.sprintf "several false positives without rule 4 (got %d)" fps)
    true (fps >= 3)

let test_sources_policy () =
  (* With input channels marked trusted there is no taint at all, so
     even the rule-4-less configuration is silent. *)
  let w = Workload.gcc in
  let p = Workload.program w in
  let policy = { Ptaint_cpu.Policy.default with Ptaint_cpu.Policy.compare_untaints = false } in
  let config =
    Ptaint_sim.Sim.Config.(
      default |> with_policy policy |> with_sources Ptaint_os.Sources.none
      |> with_stdin (w.Workload.input ()))
  in
  let r = Ptaint_sim.Sim.run ~config p in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 0 -> ()
  | o -> Alcotest.failf "expected clean run, got %a" Ptaint_sim.Sim.pp_outcome o

let () =
  Alcotest.run "workloads"
    [ ( "table 3",
        [ Alcotest.test_case "BZIP2" `Quick (test_workload Workload.bzip2 "verify OK");
          Alcotest.test_case "GCC" `Quick (test_workload Workload.gcc "statements");
          Alcotest.test_case "GZIP" `Quick (test_workload Workload.gzip "verify OK");
          Alcotest.test_case "MCF" `Quick (test_workload Workload.mcf "reachable");
          Alcotest.test_case "PARSER" `Quick (test_workload Workload.parser "words");
          Alcotest.test_case "VPR" `Quick (test_workload Workload.vpr "wirelength") ] );
      ( "properties",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "rule-4 ablation shows FPs" `Quick test_ablation_compare_rule;
          Alcotest.test_case "trusted sources are silent" `Quick test_sources_policy ] ) ]
