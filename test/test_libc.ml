(* Deeper guest-libc behaviour: the printf engine's directives and
   write-back variants, allocator coalescing, bounded I/O, and
   sub-word taint edges. *)

let run ?(stdin = "") ?(policy = Ptaint_cpu.Policy.default) src =
  let program = Ptaint_runtime.Runtime.compile src in
  let config = Ptaint_sim.Sim.Config.(default |> with_policy policy |> with_stdin stdin) in
  Ptaint_sim.Sim.run ~config program

let expect_stdout name expected src =
  let r = run src in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o -> Alcotest.failf "%s: %a" name Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check string) name expected r.Ptaint_sim.Sim.stdout

let expect_exit name code src =
  let r = run src in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited c -> Alcotest.(check int) name code c
  | o -> Alcotest.failf "%s: %a" name Ptaint_sim.Sim.pp_outcome o

(* --- printf family --- *)

let test_format_directives () =
  expect_stdout "mixed" "<-1|ffffffff|4294967295|%|x>\n"
    {| int main(void) { printf("<%d|%x|%u|%%|%c>\n", -1, -1, -1, 'x'); return 0; } |}

let test_format_width_edge () =
  expect_stdout "width smaller than digits" "12345|12345\n"
    {| int main(void) { printf("%2d|%03d\n", 12345, 12345); return 0; } |};
  expect_stdout "string width" "[ok   ]\n"
    {| int main(void) { printf("[%5s]\n", "ok"); return 0; } |}

let test_hn_writes () =
  expect_exit "hn semantics" 1
    {| int main(void) {
         int full = 0x55555555;
         int half = 0x55555555;
         int byte = 0x55555555;
         char buf[64];
         /* counts: 4 after "abcd" */
         sprintf(buf, "abcd%n", &full);
         sprintf(buf, "abcd%hn", &half);
         sprintf(buf, "abcd%hhn", &byte);
         if (full != 4) return 2;
         if (half != 0x55550004) return 3;
         if (byte != 0x55555504) return 4;
         return 1;
       } |}

let test_snprintf_truncates () =
  expect_exit "snprintf cap" 1
    {| int main(void) {
         char buf[8];
         memset(buf, 'Z', 8);
         int n = snprintf(buf, 4, "%d", 123456);
         if (n != 6) return 2;        /* returns the untruncated length */
         if (strcmp(buf, "123") != 0) return 3;
         if (buf[4] != 'Z') return 4; /* beyond cap untouched */
         return 1;
       } |}

let test_sprintf_concat () =
  expect_stdout "sprintf chains" "a=1 b=2 c=3\n"
    {| int main(void) {
         char buf[64];
         char *p = buf;
         p += sprintf(p, "a=%d ", 1);
         p += sprintf(p, "b=%d ", 2);
         sprintf(p, "c=%d", 3);
         puts(buf);
         return 0;
       } |}

(* --- strings --- *)

let test_strncpy_pads () =
  expect_exit "strncpy" 1
    {| int main(void) {
         char buf[8];
         memset(buf, 'x', 8);
         strncpy(buf, "ab", 6);
         if (buf[0] != 'a' || buf[1] != 'b') return 2;
         if (buf[2] != 0 || buf[5] != 0) return 3;  /* zero padding */
         if (buf[6] != 'x') return 4;               /* beyond n untouched */
         strncpy(buf, "longstring", 4);             /* truncation, no NUL */
         if (strncmp(buf, "long", 4) != 0) return 5;
         return 1;
       } |}

let test_atoi_edges () =
  expect_exit "atoi" 1
    {| int main(void) {
         if (atoi("") != 0) return 2;
         if (atoi("   -0") != 0) return 3;
         if (atoi("+17") != 17) return 4;
         if (atoi("2147483647") != 2147483647) return 5;
         if (atoi("12abc34") != 12) return 6;
         return 1;
       } |}

(* --- allocator --- *)

let test_malloc_coalesce () =
  expect_exit "forward coalescing" 1
    {| int main(void) {
         /* three adjacent blocks; freeing middle then first must
            coalesce so a larger block fits in their place */
         char *a = malloc(100);
         char *b = malloc(100);
         char *c = malloc(100);
         if (!a || !b || !c) return 2;
         free(b);
         free(a);            /* coalesces with b */
         char *big = malloc(180);
         if (big != a) return 3;   /* fits exactly where a+b were */
         free(big);
         free(c);
         return 1;
       } |}

let test_malloc_zero_and_negative () =
  expect_exit "degenerate sizes" 1
    {| int main(void) {
         char *z = malloc(0);
         if (!z) return 2;          /* zero-size returns a real block */
         free(z);
         if (malloc(-5) != 0) return 3;  /* negative refused */
         return 1;
       } |}

let test_free_null () =
  expect_exit "free(NULL)" 0 {| int main(void) { free(0); return 0; } |}

(* --- bounded I/O --- *)

let test_readline_cap () =
  let r =
    run ~stdin:"abcdefghijklmnop\nnext"
      {| int main(void) {
           char buf[8];
           int n = readline(0, buf, 8);
           printf("%d %s\n", n, buf);
           return 0;
         } |}
  in
  Alcotest.(check string) "capped at 7" "7 abcdefg\n" r.Ptaint_sim.Sim.stdout

let test_gets_eof () =
  let r =
    run ~stdin:"no newline"
      {| int main(void) {
           char buf[32];
           int n = gets(buf);
           printf("%d:%s", n, buf);
           return 0;
         } |}
  in
  Alcotest.(check string) "eof terminates" "10:no newline" r.Ptaint_sim.Sim.stdout

(* --- sub-word taint edges --- *)

let test_halfword_taint () =
  (* storing a half whose low byte is tainted taints exactly one byte *)
  let r =
    run ~stdin:"\x21"
      {| char dst[4];
         int main(void) {
           char one[2];
           read(0, one, 1);
           dst[0] = one[0];   /* tainted byte */
           dst[1] = 'A';      /* clean byte */
           return 0;
         } |}
  in
  let mem = r.Ptaint_sim.Sim.image.Ptaint_asm.Loader.mem in
  let dst = Ptaint_asm.Program.symbol_exn r.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program "dst" in
  Alcotest.(check bool) "byte 0 tainted" true (snd (Ptaint_mem.Memory.load_byte mem dst));
  Alcotest.(check bool) "byte 1 clean" false (snd (Ptaint_mem.Memory.load_byte mem (dst + 1)))

let test_word_assembled_from_tainted_bytes () =
  (* building a word from tainted bytes via shifts and ORs keeps it
     tainted — the attack-relevant composition *)
  let r =
    run ~stdin:"\x10\x20\x30\x40" ~policy:Ptaint_cpu.Policy.default
      {| int main(void) {
           char b[4];
           read(0, b, 4);
           int w = b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24);
           int *p = (int *)w;
           return *p;           /* tainted pointer -> alert */
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a ->
    Alcotest.(check int) "assembled pointer" 0x40302010
      (Ptaint_taint.Tword.value a.Ptaint_cpu.Machine.reg_value)
  | o -> Alcotest.failf "expected alert, got %a" Ptaint_sim.Sim.pp_outcome o

(* --- resource exhaustion --- *)

let test_stack_overflow_faults () =
  let r =
    run
      {| int deep(int n) {
           char pad[512];
           pad[0] = n;
           if (n == 0) return pad[0];
           return deep(n - 1) + 1;
         }
         int main(void) { return deep(1000000); } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Fault (Ptaint_cpu.Machine.Segfault _) -> ()
  | o -> Alcotest.failf "expected stack segfault, got %a" Ptaint_sim.Sim.pp_outcome o

let () =
  Alcotest.run "libc"
    [ ( "printf",
        [ Alcotest.test_case "directives" `Quick test_format_directives;
          Alcotest.test_case "widths" `Quick test_format_width_edge;
          Alcotest.test_case "%n/%hn/%hhn" `Quick test_hn_writes;
          Alcotest.test_case "snprintf cap" `Quick test_snprintf_truncates;
          Alcotest.test_case "sprintf chaining" `Quick test_sprintf_concat ] );
      ( "strings",
        [ Alcotest.test_case "strncpy" `Quick test_strncpy_pads;
          Alcotest.test_case "atoi edges" `Quick test_atoi_edges ] );
      ( "allocator",
        [ Alcotest.test_case "coalescing" `Quick test_malloc_coalesce;
          Alcotest.test_case "degenerate sizes" `Quick test_malloc_zero_and_negative;
          Alcotest.test_case "free(NULL)" `Quick test_free_null ] );
      ( "io",
        [ Alcotest.test_case "readline cap" `Quick test_readline_cap;
          Alcotest.test_case "gets at EOF" `Quick test_gets_eof ] );
      ( "taint edges",
        [ Alcotest.test_case "byte stores" `Quick test_halfword_taint;
          Alcotest.test_case "assembled pointer" `Quick test_word_assembled_from_tainted_bytes ] );
      ( "limits",
        [ Alcotest.test_case "stack overflow" `Quick test_stack_overflow_faults ] ) ]
