(* Unit and property tests for the taint algebra (Table 1). *)

open Ptaint_taint

let check_mask = Alcotest.(check int)

(* --- Mask basics --- *)

let test_mask_basics () =
  Alcotest.(check bool) "none untainted" false (Mask.is_tainted Mask.none);
  Alcotest.(check bool) "word tainted" true (Mask.is_tainted Mask.word);
  check_mask "all 4" 0b1111 (Mask.all ~bytes:4);
  check_mask "set" 0b0100 (Mask.set_byte Mask.none 2);
  check_mask "clear" 0b1011 (Mask.clear_byte Mask.word 2);
  Alcotest.(check bool) "byte" true (Mask.byte 0b0100 2);
  Alcotest.(check bool) "byte clear" false (Mask.byte 0b0100 1);
  check_mask "count" 3 (Mask.tainted_bytes 0b1101);
  check_mask "of_bools" 0b0101 (Mask.of_bools [ true; false; true; false ]);
  Alcotest.(check (list bool))
    "to_bools" [ true; false; true; false ]
    (Mask.to_bools ~bytes:4 0b0101)

let test_mask_pp () =
  Alcotest.(check string) "pp" "0011" (Format.asprintf "%a" (Mask.pp ?bytes:None) 0b0011);
  Alcotest.(check string) "pp one" "1000" (Format.asprintf "%a" (Mask.pp ?bytes:None) 0b1000)

(* --- Tword --- *)

let test_tword () =
  let w = Tword.make ~v:0x1_2345_6789 ~m:0xFF in
  Alcotest.(check int) "value truncated" 0x23456789 (Tword.value w);
  check_mask "mask truncated" 0b1111 (Tword.mask w);
  Alcotest.(check bool) "tainted" true (Tword.is_tainted w);
  Alcotest.(check bool) "untainted" false (Tword.is_tainted (Tword.untainted 5));
  Alcotest.(check string) "pp clean" "0x00000005" (Format.asprintf "%a" Tword.pp (Tword.untainted 5));
  Alcotest.(check string) "pp tainted" "0x00000005[t:1111]"
    (Format.asprintf "%a" Tword.pp (Tword.tainted 5))

(* The packed representation is an OCaml immediate: building and
   transforming taint words must never allocate a heap block (the
   interpreter's hot path depends on it). *)
let test_tword_immediate () =
  let imm what w = Alcotest.(check bool) (what ^ " is immediate") true (Obj.is_int (Obj.repr w)) in
  imm "make" (Tword.make ~v:0xDEADBEEF ~m:0b1010);
  imm "untainted" (Tword.untainted 0xFFFFFFFF);
  imm "tainted" (Tword.tainted 0x80000000);
  imm "with_value" (Tword.with_value (Tword.tainted 1) 0x7FFFFFFF);
  imm "with_mask" (Tword.with_mask (Tword.untainted 3) 0b0110);
  (* Round-trip through the raw bits used by Regfile/Tagged_store. *)
  let w = Tword.make ~v:0xCAFEBABE ~m:0b1001 in
  Alcotest.(check bool) "of_bits/to_bits roundtrip" true
    (Tword.equal w (Tword.of_bits (Tword.to_bits w)))

(* --- Table 1 rules --- *)

let test_default_rule () =
  (* "Taintedness of R1 = (Taintedness of R2) or (Taintedness of R3)" *)
  check_mask "or" 0b0111 (Prop.default 0b0101 0b0011);
  check_mask "clean" 0 (Prop.default 0 0)

let test_shift_rule () =
  (* Byte-granularity move plus adjacency smear for partial shifts. *)
  check_mask "left whole byte" 0b0010 (Prop.shift Prop.Left ~amount:8 ~amount_mask:Mask.none 0b0001);
  check_mask "left 16" 0b0100 (Prop.shift Prop.Left ~amount:16 ~amount_mask:Mask.none 0b0001);
  check_mask "left partial smears" 0b0011
    (Prop.shift Prop.Left ~amount:4 ~amount_mask:Mask.none 0b0001);
  check_mask "right partial smears" 0b0011
    (Prop.shift Prop.Right ~amount:4 ~amount_mask:Mask.none 0b0010);
  check_mask "right whole" 0b0001 (Prop.shift Prop.Right ~amount:8 ~amount_mask:Mask.none 0b0010);
  check_mask "shift out" 0 (Prop.shift Prop.Left ~amount:24 ~amount_mask:Mask.none 0b1000);
  (* Tainted amount: conservative full taint if operand tainted. *)
  check_mask "tainted amount" 0b1111 (Prop.shift Prop.Left ~amount:1 ~amount_mask:0b0001 0b0100);
  check_mask "tainted amount clean operand" 0
    (Prop.shift Prop.Left ~amount:1 ~amount_mask:0b0001 0)

let test_and_rule () =
  (* "Untaint each byte AND-ed with an untainted zero." *)
  let m = Prop.and_bytes ~v1:0x11223344 ~m1:0b1111 ~v2:0x0000FFFF ~m2:0 in
  check_mask "upper bytes cleared" 0b0011 m;
  (* Tainted zero does not untaint. *)
  let m = Prop.and_bytes ~v1:0x11223344 ~m1:0b1111 ~v2:0x00FFFFFF ~m2:0b1000 in
  check_mask "tainted zero keeps taint" 0b1111 m;
  let m = Prop.and_bytes ~v1:0 ~m1:0 ~v2:0x11223344 ~m2:0b1111 in
  check_mask "untainted zero operand clears all" 0 m

let test_compare_xor_rules () =
  check_mask "xor idiom" 0 Prop.xor_same;
  check_mask "compare untaint" 0 Prop.compare_untaint

let test_merge_partial () =
  check_mask "byte insert" 0b1101
    (Prop.merge_partial ~old_mask:0b1111 ~new_mask:0b0 ~offset:1 ~bytes:1);
  check_mask "half insert" 0b0111
    (Prop.merge_partial ~old_mask:0b0001 ~new_mask:0b11 ~offset:1 ~bytes:2)

(* --- Properties --- *)

let mask_gen = QCheck2.Gen.int_range 0 15

let prop_union_commutative =
  QCheck2.Test.make ~name:"mask union commutative" QCheck2.Gen.(pair mask_gen mask_gen)
    (fun (a, b) -> Mask.union a b = Mask.union b a)

let prop_union_idempotent =
  QCheck2.Test.make ~name:"mask union idempotent" mask_gen (fun a -> Mask.union a a = a)

let prop_union_monotone =
  QCheck2.Test.make ~name:"union never loses taint" QCheck2.Gen.(pair mask_gen mask_gen)
    (fun (a, b) ->
      let u = Mask.union a b in
      List.for_all
        (fun i -> (not (Mask.byte a i)) || Mask.byte u i)
        [ 0; 1; 2; 3 ])

let prop_and_bytes_subset =
  (* The AND rule may only remove taint relative to the default rule,
     never add it. *)
  QCheck2.Test.make ~name:"and_bytes refines default"
    QCheck2.Gen.(tup4 (int_bound 0xFFFFFF) mask_gen (int_bound 0xFFFFFF) mask_gen)
    (fun (v1, m1, v2, m2) ->
      let refined = Prop.and_bytes ~v1 ~m1 ~v2 ~m2 in
      Mask.union refined (Prop.default m1 m2) = Prop.default m1 m2)

let prop_shift_taint_conserved =
  (* An untainted operand stays untainted through any shift. *)
  QCheck2.Test.make ~name:"shift of clean stays clean"
    QCheck2.Gen.(pair (int_bound 31) bool)
    (fun (amount, left) ->
      let dir = if left then Prop.Left else Prop.Right in
      Prop.shift dir ~amount ~amount_mask:Mask.none Mask.none = Mask.none)

let prop_merge_partial_window =
  QCheck2.Test.make ~name:"merge_partial only touches its window"
    QCheck2.Gen.(tup4 mask_gen mask_gen (int_bound 3) (int_range 1 2))
    (fun (old_mask, new_mask, offset, bytes) ->
      QCheck2.assume (offset + bytes <= 4);
      let merged = Prop.merge_partial ~old_mask ~new_mask ~offset ~bytes in
      List.for_all
        (fun i ->
          if i >= offset && i < offset + bytes then
            Mask.byte merged i = Mask.byte new_mask (i - offset)
          else Mask.byte merged i = Mask.byte old_mask i)
        [ 0; 1; 2; 3 ])

let properties =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_commutative; prop_union_idempotent; prop_union_monotone;
      prop_and_bytes_subset; prop_shift_taint_conserved; prop_merge_partial_window ]

let () =
  Alcotest.run "taint"
    [ ( "mask",
        [ Alcotest.test_case "basics" `Quick test_mask_basics;
          Alcotest.test_case "pp" `Quick test_mask_pp ] );
      ( "tword",
        [ Alcotest.test_case "basics" `Quick test_tword;
          Alcotest.test_case "immediate representation" `Quick test_tword_immediate ] );
      ( "prop (Table 1)",
        [ Alcotest.test_case "default OR rule" `Quick test_default_rule;
          Alcotest.test_case "shift rule" `Quick test_shift_rule;
          Alcotest.test_case "AND-zero rule" `Quick test_and_rule;
          Alcotest.test_case "compare/xor rules" `Quick test_compare_xor_rules;
          Alcotest.test_case "merge partial" `Quick test_merge_partial ] );
      ("properties", properties) ]
