(* Protocol-level behaviour of the guest applications with benign
   clients: the servers must be *working programs*, not just attack
   targets. *)

let run ?(stdin = "") ?(sessions = []) ?(argv = [ "app" ]) ?(fs_init = []) source =
  let program = Ptaint_runtime.Runtime.compile source in
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin stdin |> with_sessions sessions
    |> with_argv argv |> with_fs_init fs_init) in
  Ptaint_sim.Sim.run ~config program

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let reply_containing (r : Ptaint_sim.Sim.result) needle =
  List.exists (fun m -> contains m needle) r.Ptaint_sim.Sim.net_sent

let expect_clean name (r : Ptaint_sim.Sim.result) =
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited _ -> ()
  | o -> Alcotest.failf "%s: %a" name Ptaint_sim.Sim.pp_outcome o

(* --- WU-FTPD --- *)

let ftp_session msgs = [ msgs ]

let test_ftp_login_flow () =
  let r =
    run Ptaint_apps.Wuftpd.source
      ~sessions:(ftp_session [ "user user1\n"; "pass xxxxxxx\n"; "quit\n" ])
  in
  expect_clean "ftp" r;
  Alcotest.(check bool) "banner" true (reply_containing r "220 FTP server (Version wu-2.6.0(60)");
  Alcotest.(check bool) "password prompt" true (reply_containing r "331 Password required for user1");
  Alcotest.(check bool) "logged in" true (reply_containing r "230 User user1 logged in");
  Alcotest.(check bool) "goodbye" true (reply_containing r "221 Goodbye")

let test_ftp_bad_password () =
  let r =
    run Ptaint_apps.Wuftpd.source
      ~sessions:(ftp_session [ "user user1\n"; "pass wrong\n"; "quit\n" ])
  in
  expect_clean "ftp" r;
  Alcotest.(check bool) "rejected" true (reply_containing r "530 Login incorrect")

let test_ftp_stor_denied_without_root () =
  let r =
    run Ptaint_apps.Wuftpd.source
      ~fs_init:[ ("/etc/passwd", "root:x:0:0\n") ]
      ~sessions:
        (ftp_session
           [ "user user1\n"; "pass xxxxxxx\n"; "stor /etc/passwd evil\n"; "quit\n" ])
  in
  expect_clean "ftp" r;
  Alcotest.(check bool) "permission denied" true (reply_containing r "550");
  Alcotest.(check (option string)) "file untouched" (Some "root:x:0:0\n")
    (Ptaint_os.Fs.read (Ptaint_os.Kernel.fs r.Ptaint_sim.Sim.kernel) ~path:"/etc/passwd")

let test_ftp_site_exec_requires_login () =
  let r =
    run Ptaint_apps.Wuftpd.source ~sessions:(ftp_session [ "site exec hello\n"; "quit\n" ])
  in
  expect_clean "ftp" r;
  Alcotest.(check bool) "must login first" true (reply_containing r "530 Please login")

let test_ftp_unknown_command () =
  let r =
    run Ptaint_apps.Wuftpd.source ~sessions:(ftp_session [ "frobnicate\n"; "quit\n" ])
  in
  expect_clean "ftp" r;
  Alcotest.(check bool) "500" true (reply_containing r "500 Unknown command")

(* --- NULL HTTPD --- *)

let test_httpd_get_static () =
  let r =
    run Ptaint_apps.Nullhttpd.source ~sessions:[ [ "GET /index.html HTTP/1.0\n" ] ]
  in
  expect_clean "httpd" r;
  Alcotest.(check bool) "200" true (reply_containing r "200 OK")

let test_httpd_get_cgi_uses_configured_root () =
  let r = run Ptaint_apps.Nullhttpd.source ~sessions:[ [ Ptaint_apps.Nullhttpd.get_cgi "status" ] ] in
  expect_clean "httpd" r;
  Alcotest.(check (list string)) "cgi path from config"
    [ Ptaint_apps.Nullhttpd.default_cgi_root ^ "/status" ]
    r.Ptaint_sim.Sim.execs

let test_httpd_benign_post () =
  let r =
    run Ptaint_apps.Nullhttpd.source
      ~sessions:[ Ptaint_apps.Nullhttpd.post_request ~content_length:11 ~body:"hello world" ]
  in
  expect_clean "httpd" r;
  Alcotest.(check bool) "received" true (reply_containing r "received 11 bytes")

let test_httpd_bad_request () =
  let r = run Ptaint_apps.Nullhttpd.source ~sessions:[ [ "BREW /coffee HTCPCP/1.0\n" ] ] in
  expect_clean "httpd" r;
  Alcotest.(check bool) "400" true (reply_containing r "400 Bad Request")

(* --- GHTTPD --- *)

let test_ghttpd_static () =
  let r = run Ptaint_apps.Ghttpd.source ~sessions:[ [ "GET /page.html\n\n" ] ] in
  expect_clean "ghttpd" r;
  Alcotest.(check bool) "200" true (reply_containing r "200 OK")

let test_ghttpd_policy_blocks_dotdot () =
  let r = run Ptaint_apps.Ghttpd.source ~sessions:[ [ "GET /cgi-bin/../../etc/passwd\n\n" ] ] in
  expect_clean "ghttpd" r;
  Alcotest.(check bool) "403" true (reply_containing r "403 Forbidden");
  Alcotest.(check (list string)) "nothing executed" [] r.Ptaint_sim.Sim.execs

let test_ghttpd_cgi () =
  let r = run Ptaint_apps.Ghttpd.source ~sessions:[ [ "GET /cgi-bin/hello\n\n" ] ] in
  expect_clean "ghttpd" r;
  Alcotest.(check (list string)) "cgi under document root"
    [ Ptaint_apps.Ghttpd.cgi_prefix ^ "/cgi-bin/hello" ]
    r.Ptaint_sim.Sim.execs

let test_ghttpd_bad_method () =
  let r = run Ptaint_apps.Ghttpd.source ~sessions:[ [ "PUT /x\n\n" ] ] in
  expect_clean "ghttpd" r;
  Alcotest.(check bool) "400" true (reply_containing r "400 Bad Request")

(* --- traceroute --- *)

let test_traceroute_benign () =
  let r = run Ptaint_apps.Traceroute.source ~argv:Ptaint_apps.Traceroute.benign_argv in
  expect_clean "traceroute" r;
  Alcotest.(check bool) "banner" true
    (contains r.Ptaint_sim.Sim.stdout "traceroute to 10.0.0.1, 30 hops max")

let test_traceroute_single_gateway () =
  (* one -g is fine: only the second free() of an interior pointer is
     the bug *)
  let r =
    run Ptaint_apps.Traceroute.source ~argv:[ "traceroute"; "-g"; "9.9.9.9"; "10.0.0.1" ]
  in
  expect_clean "traceroute single -g" r;
  Alcotest.(check bool) "gateway listed" true
    (contains r.Ptaint_sim.Sim.stdout "gateway 1: 9.9.9.9")

(* --- exp programs behave when not attacked --- *)

let test_exp_programs_benign () =
  let r = run Ptaint_apps.Synthetic.exp1 ~stdin:"short\n" in
  expect_clean "exp1" r;
  Alcotest.(check bool) "returned" true (contains r.Ptaint_sim.Sim.stdout "exp1 returned normally");
  let r = run Ptaint_apps.Synthetic.exp2 ~stdin:"tiny\n" in
  expect_clean "exp2" r;
  Alcotest.(check bool) "done" true (contains r.Ptaint_sim.Sim.stdout "exp2 done");
  let r = run Ptaint_apps.Synthetic.exp4_fnptr ~stdin:"hey\n" in
  expect_clean "exp4" r;
  Alcotest.(check bool) "handler ran" true
    (contains r.Ptaint_sim.Sim.stdout "hello from the configured handler")

let () =
  Alcotest.run "apps"
    [ ( "wuftpd",
        [ Alcotest.test_case "login flow" `Quick test_ftp_login_flow;
          Alcotest.test_case "bad password" `Quick test_ftp_bad_password;
          Alcotest.test_case "stor denied" `Quick test_ftp_stor_denied_without_root;
          Alcotest.test_case "site exec requires login" `Quick test_ftp_site_exec_requires_login;
          Alcotest.test_case "unknown command" `Quick test_ftp_unknown_command ] );
      ( "nullhttpd",
        [ Alcotest.test_case "static GET" `Quick test_httpd_get_static;
          Alcotest.test_case "cgi root respected" `Quick test_httpd_get_cgi_uses_configured_root;
          Alcotest.test_case "benign POST" `Quick test_httpd_benign_post;
          Alcotest.test_case "bad request" `Quick test_httpd_bad_request ] );
      ( "ghttpd",
        [ Alcotest.test_case "static" `Quick test_ghttpd_static;
          Alcotest.test_case "/.. policy" `Quick test_ghttpd_policy_blocks_dotdot;
          Alcotest.test_case "cgi" `Quick test_ghttpd_cgi;
          Alcotest.test_case "bad method" `Quick test_ghttpd_bad_method ] );
      ( "traceroute",
        [ Alcotest.test_case "benign run" `Quick test_traceroute_benign;
          Alcotest.test_case "single gateway" `Quick test_traceroute_single_gateway ] );
      ("synthetic", [ Alcotest.test_case "benign inputs" `Quick test_exp_programs_benign ]) ]
