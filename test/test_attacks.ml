(* The security-coverage matrix (section 5.1): every attack under all
   three protection policies, plus benign-traffic false-positive
   checks. *)

open Ptaint_attacks

let pt = Ptaint_cpu.Policy.default
let co = Ptaint_cpu.Policy.control_only
let np = Ptaint_cpu.Policy.unprotected

let show (v, (r : Ptaint_sim.Sim.result)) =
  Format.asprintf "%a [stdout: %s] [outcome: %a]" Scenario.pp_verdict v
    (String.escaped (String.sub r.Ptaint_sim.Sim.stdout 0
                       (min 120 (String.length r.Ptaint_sim.Sim.stdout))))
    Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome

let expect_detected ?kind ?value name scenario policy =
  let v, r = Scenario.run ~policy scenario in
  match v with
  | Scenario.Detected a ->
    (match kind with
     | Some k ->
       Alcotest.(check string)
         (name ^ ": detector kind")
         (Ptaint_cpu.Machine.alert_kind_name k)
         (Ptaint_cpu.Machine.alert_kind_name a.Ptaint_cpu.Machine.kind)
     | None -> ());
    (match value with
     | Some expected ->
       Alcotest.(check int)
         (name ^ ": tainted pointer value")
         expected
         (Ptaint_taint.Tword.value a.Ptaint_cpu.Machine.reg_value)
     | None -> ())
  | _ -> Alcotest.failf "%s: expected detection, got %s" name (show (v, r))

let expect_compromised name scenario policy =
  let v, r = Scenario.run ~policy scenario in
  match v with
  | Scenario.Compromised _ -> ()
  | _ -> Alcotest.failf "%s: expected compromise, got %s" name (show (v, r))

let expect_crashed name scenario policy =
  let v, r = Scenario.run ~policy scenario in
  match v with
  | Scenario.Crashed _ -> ()
  | _ -> Alcotest.failf "%s: expected crash, got %s" name (show (v, r))

let expect_benign_survives name scenario =
  List.iter
    (fun (pname, policy) ->
      let v, r = Scenario.run_benign ~policy scenario in
      match v with
      | Scenario.Survived -> ()
      | _ -> Alcotest.failf "%s (benign, %s): %s" name pname (show (v, r)))
    Scenario.coverage_policies

(* --- synthetic --- *)

let test_exp1 () =
  expect_detected "exp1/pt" ~kind:Ptaint_cpu.Machine.Jump_target ~value:0x61616161
    Catalog.exp1_stack_smash pt;
  expect_detected "exp1/co" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.exp1_stack_smash co;
  expect_crashed "exp1/none" Catalog.exp1_stack_smash np

let test_exp1_ret2libc () =
  expect_detected "ret2libc/pt" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.exp1_ret2libc pt;
  expect_detected "ret2libc/co" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.exp1_ret2libc co;
  expect_compromised "ret2libc/none" Catalog.exp1_ret2libc np

let test_exp2 () =
  (* the alert fires at unlink's FD->bk store: the base register holds
     FD + 8 = 0x61616161 + 8 *)
  expect_detected "exp2/pt" ~value:0x61616169 Catalog.exp2_heap pt;
  expect_crashed "exp2/co" Catalog.exp2_heap co;
  expect_crashed "exp2/none" Catalog.exp2_heap np

let test_exp3 () =
  expect_detected "exp3/pt" ~kind:Ptaint_cpu.Machine.Store_address ~value:0x64636261
    Catalog.exp3_format pt;
  expect_crashed "exp3/co" Catalog.exp3_format co;
  expect_crashed "exp3/none" Catalog.exp3_format np

let test_exp4 () =
  expect_detected "exp4/pt" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.exp4_fnptr pt;
  expect_detected "exp4/co" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.exp4_fnptr co;
  expect_compromised "exp4/none" Catalog.exp4_fnptr np

(* --- real-world, the paper's headline: non-control-data attacks are
   invisible to control-data protection but caught by pointer
   taintedness --- *)

let test_wuftpd () =
  let program = Catalog.wuftpd_format_uid.Scenario.build () in
  let uid_addr = Ptaint_asm.Program.symbol_exn program Ptaint_apps.Wuftpd.uid_symbol in
  expect_detected "wuftpd/pt" ~kind:Ptaint_cpu.Machine.Store_address ~value:uid_addr
    Catalog.wuftpd_format_uid pt;
  expect_compromised "wuftpd/co" Catalog.wuftpd_format_uid co;
  expect_compromised "wuftpd/none" Catalog.wuftpd_format_uid np

let test_nullhttpd () =
  expect_detected "nullhttpd/pt" ~kind:Ptaint_cpu.Machine.Store_address
    Catalog.nullhttpd_cgi_root pt;
  expect_compromised "nullhttpd/co" Catalog.nullhttpd_cgi_root co;
  expect_compromised "nullhttpd/none" Catalog.nullhttpd_cgi_root np

let test_ghttpd () =
  expect_detected "ghttpd/pt" ~kind:Ptaint_cpu.Machine.Load_address
    Catalog.ghttpd_url_pointer pt;
  expect_compromised "ghttpd/co" Catalog.ghttpd_url_pointer co;
  expect_compromised "ghttpd/none" Catalog.ghttpd_url_pointer np

let test_traceroute () =
  expect_detected "traceroute/pt" Catalog.traceroute_double_free pt;
  expect_crashed "traceroute/co" Catalog.traceroute_double_free co;
  expect_crashed "traceroute/none" Catalog.traceroute_double_free np

(* --- remaining taint sources: environment and files --- *)

let test_env_login () =
  expect_detected "login/pt" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.env_login pt;
  expect_detected "login/co" ~kind:Ptaint_cpu.Machine.Jump_target Catalog.env_login co;
  expect_compromised "login/none" Catalog.env_login np

let test_logd_config () =
  expect_detected "logd/pt" ~kind:Ptaint_cpu.Machine.Store_address ~value:0x41414141
    Catalog.logd_config pt;
  expect_crashed "logd/co" Catalog.logd_config co;
  expect_crashed "logd/none" Catalog.logd_config np;
  (* trusting the file system (sources policy) blinds the detector *)
  let program = Catalog.logd_config.Scenario.build () in
  let config = Scenario.attack_config Catalog.logd_config program in
  let config =
    { config with
      Ptaint_sim.Sim.sources = { Ptaint_os.Sources.all with Ptaint_os.Sources.file = false } }
  in
  let r = Ptaint_sim.Sim.run ~config program in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert _ -> Alcotest.fail "trusted file input should not alert"
  | _ -> ()

(* --- false positives: benign traffic must survive every policy --- *)

let test_benign () =
  List.iter
    (fun s -> expect_benign_survives s.Scenario.name s)
    Catalog.all

(* --- payload builder unit tests --- *)

let test_le_word () =
  Alcotest.(check string) "le" "\x20\xbc\x02\x10" (Payload.le_word 0x1002bc20)

let test_normalize () =
  Alcotest.(check string) "dotdot" "/bin/sh"
    (Payload.normalize_path "/usr/local/ghttpd/cgi-bin/../../../../bin/sh");
  Alcotest.(check string) "plain" "/usr/bin/x" (Payload.normalize_path "/usr/bin/x");
  Alcotest.(check string) "root escape clamps" "/etc" (Payload.normalize_path "/../../etc")

let test_fake_chunk () =
  let s = Payload.fake_chunk ~size:0x40 ~fd:0x61616161 ~bk:0x62626262 in
  Alcotest.(check int) "length" 12 (String.length s);
  Alcotest.(check char) "size byte" '\x40' s.[0];
  Alcotest.(check char) "fd byte" 'a' s.[4]

let test_format_write_shape () =
  let p = Payload.format_write_bytes ~ap_skip_words:0 ~target:0x10001000 ~bytes:[ 0; 0 ] in
  (* must contain two %hhn and the two target addresses at the end *)
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length p then acc
      else go (i + 1) (if String.sub p i n = sub then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "two %hhn" 2 (count_sub "%hhn");
  let tail = String.sub p (String.length p - 16) 16 in
  Alcotest.(check string) "addr 0" (Payload.le_word 0x10001000) (String.sub tail 4 4);
  Alcotest.(check string) "addr 1" (Payload.le_word 0x10001001) (String.sub tail 12 4)

let () =
  Alcotest.run "attacks"
    [ ( "payloads",
        [ Alcotest.test_case "le_word" `Quick test_le_word;
          Alcotest.test_case "normalize_path" `Quick test_normalize;
          Alcotest.test_case "fake chunk" `Quick test_fake_chunk;
          Alcotest.test_case "format write shape" `Quick test_format_write_shape ] );
      ( "synthetic",
        [ Alcotest.test_case "exp1 stack smash" `Quick test_exp1;
          Alcotest.test_case "exp1 ret2libc" `Quick test_exp1_ret2libc;
          Alcotest.test_case "exp2 heap" `Quick test_exp2;
          Alcotest.test_case "exp3 format" `Quick test_exp3;
          Alcotest.test_case "exp4 fnptr" `Quick test_exp4 ] );
      ( "real world",
        [ Alcotest.test_case "wuftpd" `Quick test_wuftpd;
          Alcotest.test_case "nullhttpd" `Quick test_nullhttpd;
          Alcotest.test_case "ghttpd" `Quick test_ghttpd;
          Alcotest.test_case "traceroute" `Quick test_traceroute ] );
      ( "other sources",
        [ Alcotest.test_case "env: login $HOME" `Quick test_env_login;
          Alcotest.test_case "file: logd config" `Quick test_logd_config ] );
      ("false positives", [ Alcotest.test_case "benign traffic" `Quick test_benign ]) ]
