(* The fault-injection engine: injections must land through the
   counter-exact entry points (invariants audited after every one),
   plans must be deterministic at any -j, fuel-slicing must be
   observationally invisible, and the directed fault models must
   actually move the detector — taint loss produces measured false
   negatives, spurious taint produces false positives. *)

open Ptaint_attacks
module Sim = Ptaint_sim.Sim
module Fi = Ptaint_fi.Fi
module Campaign = Ptaint_campaign.Campaign
module Memory = Ptaint_mem.Memory
module Machine = Ptaint_cpu.Machine

(* every test in this binary audits the store after each injection *)
let () =
  Fi.debug_checks := true;
  Ptaint_mem.Tagged_store.debug_asserts := true

let exp1 = Catalog.exp1_stack_smash

let attack_config program = (Scenario.attack exp1).Scenario.config program

let benign_config program =
  match Scenario.benign exp1 with
  | Some c -> c.Scenario.config program
  | None -> Alcotest.fail "exp1 should have a benign case"

let fingerprint (r : Sim.result) =
  Printf.sprintf "%s | out:%s | %d insns | %d sys | uid %d"
    (Format.asprintf "%a" Sim.pp_outcome r.Sim.outcome)
    (String.escaped r.Sim.stdout) r.Sim.instructions r.Sim.syscalls r.Sim.final_uid

(* --- every fault model lands and keeps the live counters exact --- *)

let test_apply_models () =
  let program = exp1.Scenario.build () in
  let s = Sim.boot ~config:(attack_config program) program in
  let m = s.Sim.s_machine in
  (match Sim.run_until s ~icount:50 with
   | Sim.Running -> ()
   | Sim.Finished _ -> Alcotest.fail "exp1 should run past 50 instructions");
  let mem = m.Machine.mem in
  let dbase = program.Ptaint_asm.Program.data_base in
  let check_ok name fault =
    Alcotest.(check bool) (name ^ " lands") true (Fi.apply m fault);
    (* Fi.debug_checks already audited; audit once more explicitly *)
    Memory.check_invariants mem
  in
  check_ok "data flip" (Fi.Flip_data { addr = dbase; bit = 3 });
  check_ok "reg flip" (Fi.Flip_reg { slot = 8; bit = 7 });
  check_ok "spurious taint" (Fi.Spurious_taint { addr = dbase; len = 64 });
  Alcotest.(check bool) "spurious taint raised the live counter" true
    (Memory.tainted_bytes mem >= 64);
  check_ok "taint loss" (Fi.Taint_loss { addr = dbase; len = 64 });
  check_ok "reg spurious taint" (Fi.Reg_spurious_taint { slot = 29 });
  check_ok "reg taint loss" (Fi.Reg_taint_loss { slot = 29 });
  check_ok "stuck clean" (Fi.Stuck_clean { addr = dbase; len = 64 });
  check_ok "taint wipe" Fi.Taint_wipe;
  Alcotest.(check int) "taint wipe zeroes the live counter" 0 (Memory.tainted_bytes mem);
  (* a fault aimed at unmapped memory is reported, never raised *)
  Alcotest.(check bool) "unmapped injection misses" false
    (Fi.apply m (Fi.Flip_data { addr = 0x00000004; bit = 0 }))

(* --- slicing parity: a zero-injection sliced run is the plain run --- *)

let test_slice_parity () =
  let program = exp1.Scenario.build () in
  List.iter
    (fun (name, config) ->
      let plain = Sim.run ~config program in
      let sliced =
        Sim.finish_sliced ~deadline:(Unix.gettimeofday () +. 3600.) ~slice:257
          (Sim.boot ~config program)
      in
      Alcotest.(check string) (name ^ ": sliced = plain") (fingerprint plain)
        (fingerprint sliced);
      let planned = Fi.run_plan ~config ~slice:257 ~plan:[] program in
      Alcotest.(check string) (name ^ ": empty plan = plain") (fingerprint plain)
        (fingerprint planned.Fi.result))
    [ ("block engine, attack", attack_config program);
      ("block engine, benign", benign_config program);
      (* a present on_step hook routes through the per-step engine *)
      ( "per-step engine, attack",
        { (attack_config program) with Sim.on_step = Some (fun _ _ -> ()) } );
      ( "per-step engine, benign",
        { (benign_config program) with Sim.on_step = Some (fun _ _ -> ()) } ) ];
  (* and the parallel batch API agrees with the sliced singles *)
  let configs = [ attack_config program; benign_config program ] in
  let batch = Sim.run_many ~domains:2 (List.map (fun c -> (c, program)) configs) in
  List.iter2
    (fun config (many : Sim.result) ->
      let sliced =
        Sim.finish_sliced ~deadline:(Unix.gettimeofday () +. 3600.) ~slice:257
          (Sim.boot ~config program)
      in
      Alcotest.(check string) "run_many = sliced single" (fingerprint many)
        (fingerprint sliced))
    configs batch

let test_watchdog_fires () =
  let spin = Ptaint_asm.Assembler.assemble_exn ".text\nmain: j main\n" in
  let config = Sim.Config.(default |> with_max_instructions 1_000_000_000) in
  match
    Sim.finish_sliced ~deadline:(Unix.gettimeofday () +. 0.2) (Sim.boot ~config spin)
  with
  | _ -> Alcotest.fail "spinning guest must hit the watchdog"
  | exception Sim.Timeout { instructions } ->
    Alcotest.(check bool) "made progress before the deadline" true (instructions > 0)

(* --- run_until lands exactly inside promoted superblocks --- *)

(* A hot nested loop whose blocks all get promoted and chained by the
   translation tier.  Pausing at arbitrary icounts — including ones
   that fall in the middle of a fused block — must park the machine at
   exactly that instruction, accept an injection there, and resume
   bit-identically to the per-step engine doing the same dance. *)
let hot_loop_asm =
  {|
        .text
main:   li $t0, 100
outer:  li $t1, 50
inner:  addiu $t1, $t1, -1
        addu $t2, $t2, $t0
        bne $t1, $zero, inner
        addiu $t0, $t0, -1
        bgtz $t0, outer
        li $v0, 1
        li $a0, 0
        syscall
|}

let test_superblock_slice_exact () =
  let program = Ptaint_asm.Assembler.assemble_exn hot_loop_asm in
  (* pauses chosen to land at different offsets inside the fused
     3-instruction inner block, long after promotion (threshold 16) *)
  let pauses = [ 1000; 5003; 5004; 7919; 12000 ] in
  let drive config =
    let s = Sim.boot ~config program in
    let m = s.Sim.s_machine in
    let at =
      List.map
        (fun n ->
          match Sim.run_until s ~icount:n with
          | Sim.Running ->
            Alcotest.(check int) (Printf.sprintf "paused at exactly %d" n) n
              m.Machine.icount;
            (* mutate state mid-chain: the resumed run must honor it *)
            Alcotest.(check bool) "injection lands mid-chain" true
              (Fi.apply m (Fi.Flip_reg { slot = 10; bit = 2 }));
            (m.Machine.pc, m.Machine.icount)
          | Sim.Finished _ -> Alcotest.failf "finished before icount %d" n)
        pauses
    in
    let r = Sim.finish s in
    let regs =
      List.init Ptaint_cpu.Regfile.slots (fun i ->
          Ptaint_taint.Tword.to_bits (Ptaint_cpu.Regfile.slot m.Machine.regs i))
    in
    (at, fingerprint r, regs, m)
  in
  let at_b, fp_b, regs_b, mb = drive Sim.default_config in
  let at_s, fp_s, regs_s, _ =
    drive { Sim.default_config with Sim.on_step = Some (fun _ _ -> ()) }
  in
  List.iteri
    (fun i ((pc_b, ic_b), (pc_s, ic_s)) ->
      Alcotest.(check int) (Printf.sprintf "pause %d: same pc" i) pc_s pc_b;
      Alcotest.(check int) (Printf.sprintf "pause %d: same icount" i) ic_s ic_b)
    (List.combine at_b at_s);
  Alcotest.(check string) "resumed run = per-step run" fp_s fp_b;
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "register slot %d differs — bulk %x, per-step %x" i b a)
    (List.combine regs_b regs_s);
  (* and the bulk run really was executing translated chains *)
  Alcotest.(check bool) "blocks were promoted" true (mb.Machine.sb_promoted > 0);
  Alcotest.(check bool) "chains linked up" true (mb.Machine.chain_hits > 0)

(* --- directed faults move the detector the way the taxonomy says --- *)

let test_taint_wipe_false_negative () =
  let program = exp1.Scenario.build () in
  let config = attack_config program in
  let baseline = Sim.run ~config program in
  Alcotest.(check bool) "baseline detects the attack" true (Sim.detected baseline);
  let at = max 1 (baseline.Sim.instructions - 1) in
  let report = Fi.run_plan ~config ~plan:[ { Fi.at; fault = Fi.Taint_wipe } ] program in
  (match report.Fi.applied with
   | [ { Fi.ok; _ } ] -> Alcotest.(check bool) "wipe landed" true ok
   | _ -> Alcotest.fail "expected one applied record");
  Alcotest.(check bool) "taint wipe defeats detection (false negative)" false
    (Sim.detected report.Fi.result)

let test_spurious_taint_false_positive () =
  let program = exp1.Scenario.build () in
  let config = benign_config program in
  let baseline = Sim.run ~config program in
  Alcotest.(check bool) "benign baseline raises no alert" false (Sim.detected baseline);
  let at = max 1 (baseline.Sim.instructions / 2) in
  let plan =
    [ { Fi.at; fault = Fi.Spurious_taint { addr = program.Ptaint_asm.Program.data_base; len = 64 } };
      { Fi.at; fault = Fi.Reg_spurious_taint { slot = 29 } };
      { Fi.at; fault = Fi.Reg_spurious_taint { slot = 31 } } ]
  in
  let report = Fi.run_plan ~config ~plan program in
  Alcotest.(check bool) "spurious taint triggers a false positive" true
    (Sim.detected report.Fi.result);
  (* detection latency is measured in instructions from the injection *)
  let latency = report.Fi.result.Sim.instructions - at in
  Alcotest.(check bool) "latency is measured and non-negative" true (latency >= 0)

let test_stuck_clean_runs () =
  let program = exp1.Scenario.build () in
  let config = attack_config program in
  let dbase = program.Ptaint_asm.Program.data_base in
  let dlen = max (String.length program.Ptaint_asm.Program.data) 16 in
  let plan =
    [ { Fi.at = 1; fault = Fi.Stuck_clean { addr = dbase; len = dlen } };
      { Fi.at = 1;
        fault = Fi.Stuck_clean { addr = Ptaint_mem.Layout.stack_top - 16384; len = 16384 } } ]
  in
  let report = Fi.run_plan ~config ~slice:64 ~plan program in
  List.iter
    (fun (a : Fi.applied) -> Alcotest.(check bool) "stuck region armed" true a.Fi.ok)
    report.Fi.applied;
  (* whatever the verdict, the trial must terminate cleanly and the
     store must still satisfy its invariants *)
  Memory.check_invariants report.Fi.result.Sim.machine.Machine.mem

(* --- late injections land on nothing, reported not raised --- *)

let test_injection_after_exit () =
  let program = exp1.Scenario.build () in
  let config = benign_config program in
  let baseline = Sim.run ~config program in
  let late = baseline.Sim.instructions + 1000 in
  let report =
    Fi.run_plan ~config ~plan:[ { Fi.at = late; fault = Fi.Taint_wipe } ] program
  in
  (match report.Fi.applied with
   | [ { Fi.ok; _ } ] -> Alcotest.(check bool) "late injection missed" false ok
   | _ -> Alcotest.fail "expected one applied record");
  Alcotest.(check string) "run unperturbed" (fingerprint baseline)
    (fingerprint report.Fi.result)

(* --- determinism: plans are pure functions of the seed; -j free --- *)

let trial_jobs () =
  let program = exp1.Scenario.build () in
  let config = attack_config program in
  let baseline = Sim.run ~config program in
  let insns = max 2 baseline.Sim.instructions in
  let dbase = program.Ptaint_asm.Program.data_base in
  List.init 8 (fun i ->
      let g = Fi.Rng.create (1234 lxor Hashtbl.hash i) in
      let at = 1 + Fi.Rng.int g (insns - 1) in
      let plan =
        if i mod 2 = 0 then
          [ { Fi.at; fault = Fi.Flip_data { addr = dbase + Fi.Rng.int g 64; bit = Fi.Rng.int g 8 } } ]
        else [ { Fi.at; fault = Fi.Reg_taint_loss { slot = 1 + Fi.Rng.int g 31 } } ]
      in
      Campaign.job_thunk ~name:(Printf.sprintf "trial-%d" i) (fun () ->
          (Fi.run_plan ~config ~plan program).Fi.result))

let test_campaign_determinism () =
  let jprint (r : Campaign.job_result) =
    match r.Campaign.status with
    | Campaign.Finished res -> r.Campaign.name ^ " " ^ fingerprint res
    | Campaign.Failed f -> r.Campaign.name ^ " FAILED " ^ Campaign.kind_name f.Campaign.kind
  in
  let one, _ = Campaign.run ~domains:1 (trial_jobs ()) in
  let two, _ = Campaign.run ~domains:2 (trial_jobs ()) in
  Alcotest.(check (list string)) "-j 1 = -j 2"
    (List.map jprint one) (List.map jprint two);
  Alcotest.(check bool) "no harness failures" true
    (List.for_all
       (fun (r : Campaign.job_result) ->
         match r.Campaign.status with Campaign.Finished _ -> true | _ -> false)
       one)

let test_rng_and_parse () =
  let a = Fi.Rng.create 7 and b = Fi.Rng.create 7 in
  Alcotest.(check (list int)) "rng reproducible"
    (List.init 16 (fun _ -> Fi.Rng.int a 1000))
    (List.init 16 (fun _ -> Fi.Rng.int b 1000));
  let roundtrip spec =
    match Fi.parse spec with
    | Ok i -> Format.asprintf "%a" Fi.pp_injection i
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string) "data-flip spec"
    "data-flip@1000 into mem[0x10000000] bit 3"
    (roundtrip "data-flip@1000:0x10000000.3");
  Alcotest.(check string) "taint-wipe spec" "taint-wipe@1500 into all taint state"
    (roundtrip "taint-wipe@1500");
  (match Fi.parse "reg-taint-loss@100:29" with
   | Ok { Fi.at = 100; fault = Fi.Reg_taint_loss { slot = 29 } } -> ()
   | _ -> Alcotest.fail "reg-taint-loss spec should parse");
  match Fi.parse "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad spec must be rejected"

let () =
  Alcotest.run "fi"
    [ ( "apply",
        [ Alcotest.test_case "all models land, counters exact" `Quick test_apply_models;
          Alcotest.test_case "late injection misses" `Quick test_injection_after_exit ] );
      ( "slicing",
        [ Alcotest.test_case "sliced run = plain run" `Quick test_slice_parity;
          Alcotest.test_case "run_until exact inside superblocks" `Quick
            test_superblock_slice_exact;
          Alcotest.test_case "watchdog fires" `Quick test_watchdog_fires ] );
      ( "coverage deltas",
        [ Alcotest.test_case "taint wipe => false negative" `Quick
            test_taint_wipe_false_negative;
          Alcotest.test_case "spurious taint => false positive" `Quick
            test_spurious_taint_false_positive;
          Alcotest.test_case "stuck-at-clean terminates cleanly" `Quick
            test_stuck_clean_runs ] );
      ( "determinism",
        [ Alcotest.test_case "campaign identical at any -j" `Quick
            test_campaign_determinism;
          Alcotest.test_case "rng + spec parsing" `Quick test_rng_and_parse ] ) ]
