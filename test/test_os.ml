(* OS layer: filesystem, scripted sockets, and kernel syscalls driven
   through real guest programs. *)

let run ?(config = Ptaint_sim.Sim.default_config) src =
  Ptaint_sim.Sim.run ~config (Ptaint_runtime.Runtime.compile src)

(* --- Fs --- *)

let test_fs () =
  let fs = Ptaint_os.Fs.create () in
  Ptaint_os.Fs.add fs ~path:"/etc/passwd" "root:x:0:0\n";
  Alcotest.(check (option string)) "read" (Some "root:x:0:0\n") (Ptaint_os.Fs.read fs ~path:"/etc/passwd");
  Alcotest.(check bool) "exists" true (Ptaint_os.Fs.exists fs ~path:"/etc/passwd");
  Ptaint_os.Fs.append fs ~path:"/etc/passwd" "alice:x:1:1\n";
  Alcotest.(check (option string)) "append" (Some "root:x:0:0\nalice:x:1:1\n")
    (Ptaint_os.Fs.read fs ~path:"/etc/passwd");
  Ptaint_os.Fs.truncate fs ~path:"/etc/passwd";
  Alcotest.(check (option string)) "truncate" (Some "") (Ptaint_os.Fs.read fs ~path:"/etc/passwd");
  Ptaint_os.Fs.append fs ~path:"/new" "x";
  Alcotest.(check bool) "append creates" true (Ptaint_os.Fs.exists fs ~path:"/new");
  Ptaint_os.Fs.remove fs ~path:"/new";
  Alcotest.(check bool) "removed" false (Ptaint_os.Fs.exists fs ~path:"/new");
  Alcotest.(check (list string)) "paths" [ "/etc/passwd" ] (Ptaint_os.Fs.paths fs)

(* --- Socket --- *)

let test_socket () =
  let s = Ptaint_os.Socket.create ~sessions:[ [ "hello"; "world" ]; [ "bye" ] ] in
  Alcotest.(check int) "two pending" 2 (Ptaint_os.Socket.pending_sessions s);
  Alcotest.(check bool) "accept 1" true (Ptaint_os.Socket.accept s);
  Alcotest.(check string) "partial recv" "hel" (Ptaint_os.Socket.recv s ~max:3);
  Alcotest.(check string) "rest of message" "lo" (Ptaint_os.Socket.recv s ~max:100);
  Alcotest.(check string) "next message" "world" (Ptaint_os.Socket.recv s ~max:100);
  Alcotest.(check string) "eof" "" (Ptaint_os.Socket.recv s ~max:100);
  Ptaint_os.Socket.send s "reply";
  Alcotest.(check bool) "accept 2" true (Ptaint_os.Socket.accept s);
  Alcotest.(check string) "second session" "bye" (Ptaint_os.Socket.recv s ~max:100);
  Alcotest.(check bool) "no third" false (Ptaint_os.Socket.accept s);
  Alcotest.(check (list string)) "sent" [ "reply" ] (Ptaint_os.Socket.sent s)

(* --- syscalls through guest programs --- *)

let test_file_io () =
  let config =
    Ptaint_sim.Sim.Config.(default |> with_fs_init [ ("/data/in.txt", "file contents here") ])
  in
  let r =
    run ~config
      {| int main(void) {
           char buf[64];
           int fd = open("/data/in.txt", 0);
           if (fd < 0) return 1;
           int n = read(fd, buf, 63);
           buf[n] = 0;
           close(fd);
           int out = open("/data/out.txt", 1);
           write(out, buf, n);
           close(out);
           printf("%d\n", n);
           return 0;
         } |}
  in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check string) "copied through guest" (Some "file contents here" |> Option.get)
    (Option.get (Ptaint_os.Fs.read (Ptaint_os.Kernel.fs r.Ptaint_sim.Sim.kernel) ~path:"/data/out.txt"))

let test_open_missing () =
  let r = run {| int main(void) { return open("/no/such", 0) < 0 ? 7 : 8; } |} in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 7 -> ()
  | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o

let test_file_taint_policy () =
  (* file contents are tainted under the default policy, clean when
     files are trusted *)
  let src =
    {| char buf[16];
       int main(void) {
         int fd = open("/f", 0);
         read(fd, buf, 4);
         return 0;
       } |}
  in
  let check sources expected =
    let config = Ptaint_sim.Sim.Config.(default |> with_sources sources |> with_fs_init [ ("/f", "abcd") ]) in
    let r = run ~config src in
    let buf =
      Ptaint_asm.Program.symbol_exn r.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program "buf"
    in
    Alcotest.(check int) "tainted bytes" expected
      (Ptaint_mem.Memory.tainted_in_range r.Ptaint_sim.Sim.image.Ptaint_asm.Loader.mem buf 4)
  in
  check Ptaint_os.Sources.all 4;
  check Ptaint_os.Sources.none 0;
  check Ptaint_os.Sources.network_only 0

let test_uid_syscalls () =
  let config = Ptaint_sim.Sim.Config.(default |> with_uid 1000) in
  let r =
    run ~config
      {| int main(void) {
           int before = getuid();
           setuid(0);
           return before * 100 + getuid();
         } |}
  in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited c -> Alcotest.(check int) "uids" (((1000 * 100) + 0) land 0xff) (c land 0xff)
   | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check int) "kernel uid changed" 0 r.Ptaint_sim.Sim.final_uid

let test_exec_recorded () =
  let r = run {| int main(void) { exec("/bin/date"); exec("/bin/sh"); return 0; } |} in
  Alcotest.(check (list string)) "execs" [ "/bin/date"; "/bin/sh" ] r.Ptaint_sim.Sim.execs

let test_sbrk_growth () =
  let r =
    run
      {| int main(void) {
           char *a = sbrk(8192);
           char *b = sbrk(0);
           if (b - a != 8192) return 1;
           a[8191] = 42;            /* newly mapped page is writable */
           return a[8191];
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 42 -> ()
  | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o

let test_sbrk_limit () =
  (* exhausting the heap returns -1 rather than faulting *)
  let r =
    run
      {| int main(void) {
           int grabbed = 0;
           while (1) {
             char *p = sbrk(65536);
             if ((int)p == -1) break;
             grabbed++;
             if (grabbed > 100000) return 9;
           }
           return grabbed > 0 ? 3 : 4;
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 3 -> ()
  | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o

let test_bad_fd () =
  let r =
    run
      {| int main(void) {
           char b[4];
           if (read(42, b, 4) != -1) return 1;
           if (write(42, b, 4) != -1) return 2;
           if (read(1, b, 4) != -1) return 3;   /* stdout is not readable */
           return 0;
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 0 -> ()
  | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o

let test_efault_on_wild_buffer () =
  (* kernel returns -1 when the guest passes an unmapped buffer (with
     data actually available, so the copy is attempted) *)
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "abcd") in
  let r =
    run ~config {| int main(void) { return read(0, (char *)0x40404040, 4) == -1 ? 0 : 1; } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 0 -> ()
  | o -> Alcotest.failf "outcome %a" Ptaint_sim.Sim.pp_outcome o

let test_syscall_counts () =
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "xyz") in
  let r =
    run ~config
      {| int main(void) {
           char b[8];
           read(0, b, 3);
           write(1, b, 3);
           return 0;
         } |}
  in
  Alcotest.(check int) "input bytes" 3 r.Ptaint_sim.Sim.input_bytes;
  Alcotest.(check bool) "syscalls counted" true (r.Ptaint_sim.Sim.syscalls >= 3)

let () =
  Alcotest.run "os"
    [ ("fs", [ Alcotest.test_case "filesystem" `Quick test_fs ]);
      ("socket", [ Alcotest.test_case "sessions" `Quick test_socket ]);
      ( "kernel",
        [ Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "open missing" `Quick test_open_missing;
          Alcotest.test_case "file taint policy" `Quick test_file_taint_policy;
          Alcotest.test_case "uid" `Quick test_uid_syscalls;
          Alcotest.test_case "exec recorded" `Quick test_exec_recorded;
          Alcotest.test_case "sbrk growth" `Quick test_sbrk_growth;
          Alcotest.test_case "sbrk limit" `Quick test_sbrk_limit;
          Alcotest.test_case "bad fd" `Quick test_bad_fd;
          Alcotest.test_case "EFAULT" `Quick test_efault_on_wild_buffer;
          Alcotest.test_case "accounting" `Quick test_syscall_counts ] ) ]
