(* The observability layer: ring buffer, event bus, metrics registry,
   Chrome exporter, and the campaign-level wiring. *)

open Ptaint_obs

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

(* --- ring ----------------------------------------------------------- *)

let test_ring_partial () =
  let r = Ring.create ~dummy:"-" 4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Ring.push r 1 "a";
  Ring.push r 2 "b";
  Alcotest.(check int) "length" 2 (Ring.length r);
  Alcotest.(check (list (pair int string))) "order" [ (1, "a"); (2, "b") ] (Ring.to_list r)

let test_ring_wrap () =
  let r = Ring.create ~dummy:0 3 in
  List.iter (fun i -> Ring.push r i i) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "full" 3 (Ring.length r);
  Alcotest.(check (list (pair int int))) "last three, oldest first"
    [ (3, 3); (4, 4); (5, 5) ] (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Alcotest.(check (list (pair int int))) "empty" [] (Ring.to_list r)

(* --- trace ---------------------------------------------------------- *)

let ev c = Event.Restore { cycle = c }

let test_trace_records_and_fans_out () =
  let t = Trace.create () in
  let seen = ref [] in
  Trace.on_event t (fun e -> seen := e :: !seen);
  Trace.emit t (ev 1);
  Trace.emit t (ev 2);
  Alcotest.(check int) "recorded" 2 (Trace.length t);
  Alcotest.(check int) "sink saw both" 2 (List.length !seen);
  Alcotest.(check (list int)) "emission order" [ 1; 2 ]
    (List.map Event.cycle (Trace.events t))

let test_trace_limit () =
  let t = Trace.create ~limit:3 () in
  let sunk = ref 0 in
  Trace.on_event t (fun _ -> incr sunk);
  List.iter (fun c -> Trace.emit t (ev c)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "recorder bounded" 3 (Trace.length t);
  Alcotest.(check int) "overflow counted" 2 (Trace.dropped t);
  Alcotest.(check int) "sinks see everything" 5 !sunk;
  Alcotest.(check (list int)) "keeps the first events" [ 1; 2; 3 ]
    (List.map Event.cycle (Trace.events t))

let test_taint_sources_filter () =
  let t = Trace.create () in
  Trace.emit t (ev 1);
  Trace.emit t (Event.Taint_in { cycle = 2; source = "read(stdin)"; addr = 0x100; len = 4; offset = 0 });
  Trace.emit t (Event.Syscall { cycle = 3; pc = 0; name = "write" });
  (match Trace.taint_sources t with
   | [ Event.Taint_in { source; len; _ } ] ->
     Alcotest.(check string) "source" "read(stdin)" source;
     Alcotest.(check int) "len" 4 len
   | l -> Alcotest.fail (Printf.sprintf "expected one Taint_in, got %d events" (List.length l)))

(* --- metrics -------------------------------------------------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "jobs" in
  Metrics.inc c;
  Metrics.inc ~by:4 c;
  (* get-or-create: same underlying counter *)
  Metrics.inc (Metrics.counter m "jobs");
  (match Metrics.rows m with
   | [ r ] ->
     Alcotest.(check string) "name" "jobs" r.Metrics.name;
     Alcotest.(check string) "kind" "counter" r.Metrics.kind;
     Alcotest.(check int) "count" 6 r.Metrics.count
   | _ -> Alcotest.fail "expected one row");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.histogram: jobs is not a histogram")
    (fun () -> ignore (Metrics.histogram m "jobs"))

let test_metrics_histogram_and_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  let h = Metrics.histogram a "wall ms" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 8.0 ];
  Metrics.observe (Metrics.histogram b "wall ms") 4.0;
  Metrics.inc ~by:2 (Metrics.counter b "alerts");
  Metrics.merge ~into:a b;
  let rows = Metrics.rows a in
  (match List.find_opt (fun r -> r.Metrics.name = "wall ms") rows with
   | Some r ->
     Alcotest.(check int) "merged count" 4 r.Metrics.count;
     Alcotest.(check (float 1e-9)) "sum" 16.0 r.Metrics.sum;
     Alcotest.(check (float 1e-9)) "min" 1.0 r.Metrics.min;
     Alcotest.(check (float 1e-9)) "max" 8.0 r.Metrics.max;
     Alcotest.(check (float 1e-9)) "mean" 4.0 r.Metrics.mean
   | None -> Alcotest.fail "histogram row missing");
  match List.find_opt (fun r -> r.Metrics.name = "alerts") rows with
  | Some r -> Alcotest.(check int) "counter created by merge" 2 r.Metrics.count
  | None -> Alcotest.fail "merged counter missing"

(* --- structured log ------------------------------------------------- *)

let test_log_logfmt_render () =
  let line =
    Log.render Log.Logfmt ~ts:0.5 ~level:Log.Info ~src:"daemon" ~msg:"job finished"
      [ Log.str "tag" "a b"; Log.int "n" 3; Log.bool "hit" true;
        Log.str "odd" "say \"hi\"\n"; Log.float "ms" 1.5 ]
  in
  Alcotest.(check string) "logfmt line"
    "ts=1970-01-01T00:00:00.500Z level=info src=daemon msg=\"job finished\" \
     tag=\"a b\" n=3 hit=true odd=\"say \\\"hi\\\"\\n\" ms=1.5"
    line;
  (* bare values stay unquoted; keys are sanitized *)
  let bare =
    Log.render Log.Logfmt ~ts:0.0 ~level:Log.Warn ~src:"x" ~msg:"m"
      [ Log.str "weird key" "v" ]
  in
  Alcotest.(check bool) "key sanitized" true (contains bare "weird_key=v")

let test_log_json_render () =
  let line =
    Log.render Log.Json ~ts:0.0 ~level:Log.Error ~src:"campaign" ~msg:"job failed"
      [ Log.str "kind" "time\"out\""; Log.int "index" 7 ]
  in
  Alcotest.(check string) "json line"
    "{\"ts\":\"1970-01-01T00:00:00.000Z\",\"level\":\"error\",\"src\":\"campaign\",\
     \"msg\":\"job failed\",\"kind\":\"time\\\"out\\\"\",\"index\":7}"
    line;
  (* control characters become \u escapes *)
  let ctl =
    Log.render Log.Json ~ts:0.0 ~level:Log.Info ~src:"s" ~msg:"m"
      [ Log.str "c" "a\x01b" ]
  in
  Alcotest.(check bool) "control escaped" true (contains ctl "a\\u0001b")

let test_log_level_filtering () =
  let b = Buffer.create 256 in
  let l = Log.create ~level:Log.Warn (Log.buffer_sink b) in
  Log.debug l ~src:"a" "dropped" [];
  Log.info l ~src:"a" "dropped too" [];
  Log.warn l ~src:"a" "kept-warn" [];
  Log.error l ~src:"a" "kept-error" [];
  (* per-source override: src b only logs errors *)
  Log.set_source_level l "b" Log.Error;
  Log.warn l ~src:"b" "src-b-warn-dropped" [];
  Log.error l ~src:"b" "src-b-error-kept" [];
  Alcotest.(check bool) "enabled warn/a" true (Log.enabled l ~src:"a" Log.Warn);
  Alcotest.(check bool) "disabled warn/b" false (Log.enabled l ~src:"b" Log.Warn);
  Log.close l;
  let out = Buffer.contents b in
  Alcotest.(check bool) "warn kept" true (contains out "kept-warn");
  Alcotest.(check bool) "error kept" true (contains out "kept-error");
  Alcotest.(check bool) "debug dropped" false (contains out "dropped");
  Alcotest.(check bool) "src override drops warn" false (contains out "src-b-warn-dropped");
  Alcotest.(check bool) "src override keeps error" true (contains out "src-b-error-kept");
  Alcotest.(check int) "exactly three lines" 3
    (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 out)

let test_log_rotation () =
  let dir = Filename.temp_file "ptaint-log" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "svc.log" in
  let l = Log.create ~level:Log.Info (Log.file_sink ~max_bytes:160 path) in
  (* each record is ~70 bytes; the third write would cross the cap and
     must land in a fresh file, with the first two rotated to .1 *)
  for i = 1 to 3 do
    Log.info l ~src:"rot" (Printf.sprintf "record-%d" i) []
  done;
  Log.close l;
  let read f =
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic; s
  in
  let live = read path and old = read (path ^ ".1") in
  Alcotest.(check bool) "third record in live file" true (contains live "record-3");
  Alcotest.(check bool) "live file fresh" false (contains live "record-1");
  Alcotest.(check bool) "rotation keeps older records" true
    (contains old "record-1" && contains old "record-2");
  Sys.remove path; Sys.remove (path ^ ".1"); Unix.rmdir dir

let test_log_hex_id () =
  Alcotest.(check string) "fixed width" "00000000000000ff" (Log.hex_id 0xff);
  Alcotest.(check string) "wide id" "1234567812345678" (Log.hex_id 0x1234567812345678)

(* --- prometheus exposition ------------------------------------------ *)

let test_prometheus_families_and_escaping () =
  let m = Metrics.create () in
  Metrics.inc ~by:3 (Metrics.counter m ~labels:[ ("outcome", "exited") ] "jobs_total");
  Metrics.inc (Metrics.counter m ~labels:[ ("outcome", "alert") ] "jobs_total");
  Metrics.set (Metrics.gauge m "queue depth") 2.0;
  Metrics.inc (Metrics.counter m ~labels:[ ("tag", "a\"b\\c\nd") ] "weird");
  let s = Metrics.prometheus m in
  (* one TYPE header per family, children grouped beneath it *)
  Alcotest.(check bool) "family header once" true
    (contains s "# TYPE jobs_total counter"
     && not (contains s "# TYPE jobs_total counter\n# TYPE"));
  Alcotest.(check bool) "first child" true (contains s "jobs_total{outcome=\"exited\"} 3");
  Alcotest.(check bool) "second child" true (contains s "jobs_total{outcome=\"alert\"} 1");
  Alcotest.(check bool) "gauge sanitized name" true (contains s "# TYPE queue_depth gauge");
  Alcotest.(check bool) "gauge value" true (contains s "queue_depth 2");
  Alcotest.(check bool) "label value escaped" true
    (contains s "weird{tag=\"a\\\"b\\\\c\\nd\"} 1")

let test_prometheus_bucket_cumulativity () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat us" in
  List.iter (Metrics.observe h) [ 0.0; 1.0; 2.0; 100.0 ];
  let s = Metrics.prometheus m in
  Alcotest.(check bool) "histogram type" true (contains s "# TYPE lat_us histogram");
  (* buckets are cumulative over the log2 boundaries: le=0 sees the
     0.0 observation, le=1 adds 1.0, le=3 adds 2.0, le=127 adds 100.0 *)
  Alcotest.(check bool) "le=0" true (contains s "lat_us_bucket{le=\"0\"} 1\n");
  Alcotest.(check bool) "le=1" true (contains s "lat_us_bucket{le=\"1\"} 2\n");
  Alcotest.(check bool) "le=3" true (contains s "lat_us_bucket{le=\"3\"} 3\n");
  Alcotest.(check bool) "le=127" true (contains s "lat_us_bucket{le=\"127\"} 4\n");
  Alcotest.(check bool) "+Inf equals count" true
    (contains s "lat_us_bucket{le=\"+Inf\"} 4\n");
  Alcotest.(check bool) "sum" true (contains s "lat_us_sum 103\n");
  Alcotest.(check bool) "count" true (contains s "lat_us_count 4\n");
  (* cumulative counts never decrease *)
  let counts =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
         if String.length line > 14 && String.sub line 0 14 = "lat_us_bucket{" then
           String.rindex_opt line ' '
           |> Option.map (fun i ->
                int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
         else None)
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone buckets" true (monotone counts)

(* --- chrome export -------------------------------------------------- *)

(* A permissive structural check: balanced braces/brackets inside the
   traceEvents array plus the required keys — not a full JSON parser,
   but enough to catch malformed emission (CI additionally runs the
   output through python's json module). *)
let test_chrome_shape () =
  let ch = Chrome.create () in
  Chrome.complete ch ~name:"job \"quoted\"" ~cat:"job" ~tid:3 ~ts_us:0.0 ~dur_us:1500.0
    ~args:[ ("policy", "full") ] ();
  Chrome.add_event ch
    (Event.Taint_in { cycle = 7; source = "recv(network)"; addr = 0x10000; len = 16; offset = 0 });
  Chrome.add_event ch (Event.Alert { cycle = 9; pc = 0x400010; kind = "jump-target"; reg = "ra"; value = 0x61616161 });
  let s = Chrome.contents ch in
  Alcotest.(check int) "event count" 3 (Chrome.event_count ch);
  Alcotest.(check bool) "array wrapper" true (contains s "{\"traceEvents\":[");
  Alcotest.(check bool) "complete event" true (contains s "\"ph\":\"X\"");
  Alcotest.(check bool) "instant event" true (contains s "\"ph\":\"i\"");
  Alcotest.(check bool) "escaped name" true (contains s "job \\\"quoted\\\"");
  Alcotest.(check bool) "cycle as microseconds" true (contains s "\"ts\":7");
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      (match c with
       | '{' | '[' -> incr depth
       | '}' | ']' -> decr depth
       | _ -> ());
      if !depth < 0 then ok := false)
    s;
  Alcotest.(check bool) "balanced" true (!ok && !depth = 0)

(* --- machine + sim wiring ------------------------------------------ *)

let attack_source =
  {|
.text
main:
    li   $a0, 0          # fd 0 = stdin
    li   $a1, 0x10000000 # buffer in .data
    li   $a2, 8
    li   $v0, 2          # SYS_READ
    syscall
    li   $t1, 0x10000000
    lw   $t0, 0($t1)
    jr   $t0             # jump through tainted pointer -> alert
.data
buf: .word 0, 0
|}

let run_observed () =
  let program = Ptaint_asm.Assembler.assemble_exn attack_source in
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "\x44\x33\x22\x11xyzw" |> with_obs true) in
  Ptaint_sim.Sim.run ~config program

let test_sim_event_story () =
  let r = run_observed () in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Alert _ -> ()
   | o -> Alcotest.fail (Format.asprintf "expected alert, got %a" Ptaint_sim.Sim.pp_outcome o));
  let evs = Ptaint_sim.Sim.events r in
  let has p = List.exists p evs in
  Alcotest.(check bool) "syscall event" true
    (has (function Event.Syscall { name = "read"; _ } -> true | _ -> false));
  Alcotest.(check bool) "taint introduction" true
    (has (function
       | Event.Taint_in { source = "read(stdin)"; len = 8; offset = 0; _ } -> true
       | _ -> false));
  Alcotest.(check bool) "register milestone" true
    (has (function Event.Reg_taint _ -> true | _ -> false));
  Alcotest.(check bool) "alert event" true
    (has (function Event.Alert { reg = "t0"; value = 0x11223344; _ } -> true | _ -> false));
  (* the introduction precedes the alert in emission order *)
  let rec story = function
    | Event.Taint_in _ :: rest ->
      List.exists (function Event.Alert _ -> true | _ -> false) rest
    | _ :: rest -> story rest
    | [] -> false
  in
  Alcotest.(check bool) "taint-in before alert" true (story evs);
  (* and the machine kept the instruction window, ending at the alert *)
  match List.rev (Ptaint_sim.Sim.insn_window r) with
  | (pc, _) :: _ -> Alcotest.(check bool) "window non-empty, last pc in text" true (pc > 0)
  | [] -> Alcotest.fail "no instruction window"

let test_obs_off_is_silent () =
  let program = Ptaint_asm.Assembler.assemble_exn attack_source in
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "\x44\x33\x22\x11xyzw") in
  let r = Ptaint_sim.Sim.run ~config program in
  Alcotest.(check (list (pair int string))) "no window" []
    (List.map (fun (pc, i) -> (pc, Ptaint_isa.Insn.to_string i))
       (Ptaint_sim.Sim.insn_window r));
  Alcotest.(check int) "no events" 0 (List.length (Ptaint_sim.Sim.events r))

(* --- campaign wiring ------------------------------------------------ *)

let test_campaign_jobs_and_metrics () =
  let program = Ptaint_asm.Assembler.assemble_exn attack_source in
  let benign = Ptaint_asm.Assembler.assemble_exn ".text\nmain: li $v0, 0\n  li $a0, 0\n  li $v0, 1\n  syscall\n" in
  let tr = Trace.create () in
  let jobs =
    [ Ptaint_campaign.Campaign.job ~name:"atk" ~policy_label:"full"
        ~config:(Ptaint_sim.Sim.Config.(default |> with_stdin "\x44\x33\x22\x11xyzw")) program;
      Ptaint_campaign.Campaign.job ~name:"ok" ~policy_label:"full"
        ~config:(Ptaint_sim.Sim.Config.default) benign ]
  in
  let results, stats = Ptaint_campaign.Campaign.run ~domains:2 ~trace:tr jobs in
  Alcotest.(check int) "both ran" 2 (List.length results);
  List.iter
    (fun (r : Ptaint_campaign.Campaign.job_result) ->
      let t = r.Ptaint_campaign.Campaign.timing in
      Alcotest.(check bool) "timing sane" true
        (t.Ptaint_campaign.Campaign.finished >= t.Ptaint_campaign.Campaign.started
         && t.Ptaint_campaign.Campaign.domain >= 0))
    results;
  (* one Job span per job, on the campaign trace *)
  let spans =
    List.filter_map
      (function Event.Job { name; outcome; _ } -> Some (name, outcome) | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check (list (pair string string))) "job spans in submission order"
    [ ("atk", "alert"); ("ok", "exited") ] spans;
  (* per-label metrics *)
  (match stats.Ptaint_campaign.Campaign.metrics with
   | [ ("full", m) ] ->
     let row name =
       match List.find_opt (fun r -> r.Metrics.name = name) (Metrics.rows m) with
       | Some r -> r
       | None -> Alcotest.fail ("missing metric " ^ name)
     in
     Alcotest.(check int) "jobs counter" 2 (row "jobs").Metrics.count;
     Alcotest.(check int) "alerts counter" 1 (row "alerts").Metrics.count;
     Alcotest.(check bool) "instructions counted" true ((row "instructions").Metrics.count > 0);
     Alcotest.(check int) "wall histogram count" 2 (row "job wall ms").Metrics.count;
     Alcotest.(check bool) "concurrency observed" true
       ((row "concurrent jobs").Metrics.min >= 1.0)
   | l -> Alcotest.fail (Printf.sprintf "expected one label, got %d" (List.length l)));
  (* the rendered table is deterministic: counters only by default *)
  let table = Ptaint_campaign.Campaign.metrics_table stats in
  Alcotest.(check bool) "counters present" true (contains table "alerts");
  Alcotest.(check bool) "no timing rows by default" true (not (contains table "job wall ms"));
  let full = Ptaint_campaign.Campaign.metrics_table ~timings:true stats in
  Alcotest.(check bool) "timing rows on demand" true (contains full "job wall ms")

let () =
  Alcotest.run "obs"
    [ ( "ring",
        [ Alcotest.test_case "partial fill" `Quick test_ring_partial;
          Alcotest.test_case "wrap" `Quick test_ring_wrap ] );
      ( "trace",
        [ Alcotest.test_case "record + sinks" `Quick test_trace_records_and_fans_out;
          Alcotest.test_case "bounded recorder" `Quick test_trace_limit;
          Alcotest.test_case "taint sources" `Quick test_taint_sources_filter ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram + merge" `Quick test_metrics_histogram_and_merge ] );
      ( "log",
        [ Alcotest.test_case "logfmt rendering" `Quick test_log_logfmt_render;
          Alcotest.test_case "json rendering" `Quick test_log_json_render;
          Alcotest.test_case "level filtering" `Quick test_log_level_filtering;
          Alcotest.test_case "size rotation" `Quick test_log_rotation;
          Alcotest.test_case "hex ids" `Quick test_log_hex_id ] );
      ( "prometheus",
        [ Alcotest.test_case "families + escaping" `Quick test_prometheus_families_and_escaping;
          Alcotest.test_case "bucket cumulativity" `Quick test_prometheus_bucket_cumulativity ] );
      ( "chrome",
        [ Alcotest.test_case "json shape" `Quick test_chrome_shape ] );
      ( "sim",
        [ Alcotest.test_case "event story" `Quick test_sim_event_story;
          Alcotest.test_case "off by default" `Quick test_obs_off_is_silent ] );
      ( "campaign",
        [ Alcotest.test_case "job spans + metrics" `Quick test_campaign_jobs_and_metrics ] ) ]
