(* Scripted sessions against the debugger command interpreter. *)

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let victim =
  {| char secret[8] = "hunter2";
     int helper(int x) { return x * 2; }
     int main(void) {
       char buf[8];
       read(0, buf, 4);
       int v = helper(3);
       int *p = *(int **)buf;
       return *p + v;
     } |}

let boot () =
  let program = Ptaint_runtime.Runtime.compile victim in
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "aaaa") in
  Ptaint_sim.Debugger.create (Ptaint_sim.Sim.boot ~config program)

let exec dbg line =
  let out, _ = Ptaint_sim.Debugger.exec dbg line in
  out

let test_breakpoint_and_continue () =
  let dbg = boot () in
  let out = exec dbg "b helper" in
  Alcotest.(check bool) "set" true (contains out "breakpoint at");
  let out = exec dbg "c" in
  Alcotest.(check bool) ("hit: " ^ out) true (contains out "breakpoint hit: helper");
  (* we are stopped at helper's first instruction *)
  let out = exec dbg "info" in
  Alcotest.(check bool) "in helper" true (contains out "<helper>");
  (* continuing again runs to the alert *)
  let out = exec dbg "c" in
  Alcotest.(check bool) ("alert: " ^ out) true (contains out "SECURITY ALERT");
  Alcotest.(check bool) "finished" true (Ptaint_sim.Debugger.finished dbg <> None);
  let out = exec dbg "c" in
  Alcotest.(check bool) "already finished" true (contains out "already finished")

let test_step_lists_instructions () =
  let dbg = boot () in
  let out = exec dbg "s 3" in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check bool) "symbolized" true (contains out "<_start");
  let out = exec dbg "info" in
  Alcotest.(check bool) "3 executed" true (contains out "instructions executed: 3")

let test_registers_and_taint () =
  let dbg = boot () in
  ignore (exec dbg "c");
  let out = exec dbg "regs" in
  Alcotest.(check bool) "sp listed" true (contains out "$sp");
  Alcotest.(check bool) "pc listed" true (contains out "pc");
  let out = exec dbg "taint" in
  Alcotest.(check bool) "tainted pointer register" true (contains out "0x61616161[t:1111]")

let test_memory_dump () =
  let dbg = boot () in
  ignore (exec dbg "c");
  let out = exec dbg "mem secret 16" in
  Alcotest.(check bool) ("ascii: " ^ out) true (contains out "hunter2");
  Alcotest.(check bool) "untainted globals unmarked" false (contains out "68*");
  let out = exec dbg "mem 0x123 16" in
  Alcotest.(check bool) "unmapped shown" true (contains out "--")

let test_disassemble () =
  let dbg = boot () in
  let out = exec dbg "dis main 4" in
  Alcotest.(check bool) "shows main" true (contains out "<main");
  Alcotest.(check bool) "four rows" true
    (List.length (List.filter (fun l -> contains l "004") (String.split_on_char '\n' out)) >= 4)

let test_backtrace_cmd () =
  let dbg = boot () in
  ignore (exec dbg "b helper");
  ignore (exec dbg "c");
  (* step past helper's prologue so its frame is linked *)
  ignore (exec dbg "s 4");
  let out = exec dbg "bt" in
  Alcotest.(check bool) "helper frame" true (contains out "helper");
  Alcotest.(check bool) "main frame" true (contains out "main")

let test_bad_input () =
  let dbg = boot () in
  Alcotest.(check bool) "unknown command" true (contains (exec dbg "frobnicate") "unknown command");
  Alcotest.(check bool) "unknown location" true (contains (exec dbg "b nowhere") "unknown location");
  Alcotest.(check bool) "help" true (contains (exec dbg "help") "breakpoint");
  let _, quit = Ptaint_sim.Debugger.exec dbg "q" in
  Alcotest.(check bool) "quit" true (quit = `Quit)

let () =
  Alcotest.run "debugger"
    [ ( "commands",
        [ Alcotest.test_case "breakpoint/continue" `Quick test_breakpoint_and_continue;
          Alcotest.test_case "step" `Quick test_step_lists_instructions;
          Alcotest.test_case "regs/taint" `Quick test_registers_and_taint;
          Alcotest.test_case "memory dump" `Quick test_memory_dump;
          Alcotest.test_case "disassemble" `Quick test_disassemble;
          Alcotest.test_case "backtrace" `Quick test_backtrace_cmd;
          Alcotest.test_case "bad input" `Quick test_bad_input ] ) ]
