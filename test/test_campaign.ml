(* The multicore campaign engine: parallel execution must be
   observationally identical to the sequential reference run
   (determinism), a crashing job must not take down the batch (fault
   isolation), and results must come back in submission order
   regardless of scheduling. *)

open Ptaint_attacks
module Campaign = Ptaint_campaign.Campaign
module Pool = Ptaint_pool.Pool

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- the generic pool --- *)

let test_pool_map () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "parallel map = sequential map"
    (List.map (fun x -> (x * x) + 1) xs)
    (Pool.map ~domains:4 (fun x -> (x * x) + 1) xs);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "more domains than items" [ 10 ]
    (Pool.map ~domains:8 (fun x -> 10 * x) [ 1 ])

let test_pool_raise () =
  match Pool.map ~domains:3 (fun x -> if x = 2 then failwith "pool boom" else x) [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure m -> Alcotest.(check string) "first failing item's exception" "pool boom" m

(* --- determinism: the full coverage matrix, 1 domain vs many --- *)

let coverage_jobs () =
  List.concat_map
    (fun (s : Scenario.t) ->
      let program = s.Scenario.build () in
      List.concat_map
        (fun (c : Scenario.case) ->
          List.map
            (fun (pname, policy) ->
              Campaign.job
                ~name:(Printf.sprintf "%s/%s/%s" s.Scenario.name c.Scenario.case_name pname)
                ~policy_label:pname
                ~config:{ (c.Scenario.config program) with Ptaint_sim.Sim.policy }
                program)
            Scenario.coverage_policies)
        (s.Scenario.cases))
    Catalog.all

let fingerprint (r : Campaign.job_result) =
  match r.Campaign.status with
  | Campaign.Finished res ->
    Printf.sprintf "%s | %s | out:%s | net:%s | %d insns | %d sys | uid %d"
      r.Campaign.name
      (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome res.Ptaint_sim.Sim.outcome)
      (String.escaped res.Ptaint_sim.Sim.stdout)
      (String.escaped (String.concat "&" res.Ptaint_sim.Sim.net_sent))
      res.Ptaint_sim.Sim.instructions res.Ptaint_sim.Sim.syscalls
      res.Ptaint_sim.Sim.final_uid
  | Campaign.Failed f ->
    Printf.sprintf "%s | FAILED (%s) %s" r.Campaign.name (Campaign.kind_name f.Campaign.kind)
      f.Campaign.exn

let test_determinism () =
  let jobs = coverage_jobs () in
  let sequential, seq_stats = Campaign.run ~domains:1 jobs in
  let parallel, par_stats = Campaign.run ~domains:4 jobs in
  Alcotest.(check (list string))
    "parallel results identical to the sequential reference"
    (List.map fingerprint sequential)
    (List.map fingerprint parallel);
  Alcotest.(check int) "same instruction totals" seq_stats.Campaign.instructions
    par_stats.Campaign.instructions;
  Alcotest.(check int) "same syscall totals" seq_stats.Campaign.syscalls
    par_stats.Campaign.syscalls;
  Alcotest.(check (list (pair string int)))
    "same per-policy detection counts" seq_stats.Campaign.detections
    par_stats.Campaign.detections;
  (* sanity: pointer taintedness detects every attack case in the matrix *)
  let pt_detections = List.assoc "pointer taintedness" par_stats.Campaign.detections in
  Alcotest.(check int) "PT detects all attacks" (List.length Catalog.all) pt_detections

(* --- fault isolation: a crashing job is contained --- *)

let test_fault_isolation () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let benign =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c
    | None -> Alcotest.fail "exp1 should have a benign case"
  in
  let ok name =
    Campaign.job ~name ~config:(benign.Scenario.config program) program
  in
  let boom =
    Campaign.job_thunk ~name:"boom" (fun () -> raise (Failure "guest exploded"))
  in
  let results, stats = Campaign.run ~domains:3 [ ok "before"; boom; ok "after" ] in
  (match results with
   | [ before; crashed; after ] ->
     (match before.Campaign.status, after.Campaign.status with
      | Campaign.Finished _, Campaign.Finished _ -> ()
      | _ -> Alcotest.fail "jobs around the crash must still finish");
     (match crashed.Campaign.status with
      | Campaign.Failed f ->
        Alcotest.(check bool) "failure message preserved" true
          (contains f.Campaign.exn "guest exploded");
        Alcotest.(check string) "classified as a crash" "crashed"
          (Campaign.kind_name f.Campaign.kind)
      | _ -> Alcotest.fail "raising job must be reported as Failed")
   | _ -> Alcotest.fail "expected three results");
  Alcotest.(check int) "one failure counted" 1 stats.Campaign.failed;
  Alcotest.(check int) "all jobs accounted for" 3 stats.Campaign.jobs;
  (* result_exn surfaces the failure as an exception *)
  match List.nth results 1 |> Campaign.result_exn with
  | _ -> Alcotest.fail "result_exn on a crashed job must raise"
  | exception Invalid_argument _ -> ()

(* --- failure taxonomy: each failure kind is typed, not string-matched --- *)

let test_retry_transient () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let benign =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c
    | None -> Alcotest.fail "exp1 should have a benign case"
  in
  let config = benign.Scenario.config program in
  let tries = Atomic.make 0 in
  let flaky =
    Campaign.job_thunk ~name:"flaky" (fun () ->
        if Atomic.fetch_and_add tries 1 = 0 then failwith "transient glitch"
        else Ptaint_sim.Sim.run ~config program)
  in
  let results, stats = Campaign.run ~domains:2 ~retries:2 ~backoff:0.001 [ flaky ] in
  (match results with
   | [ r ] ->
     (match r.Campaign.status with
      | Campaign.Finished _ -> ()
      | Campaign.Failed f ->
        Alcotest.fail ("flaky job should succeed on retry, failed: " ^ f.Campaign.exn));
     Alcotest.(check int) "second attempt succeeded" 2 r.Campaign.attempts
   | _ -> Alcotest.fail "expected one result");
  Alcotest.(check int) "no failure recorded after successful retry" 0 stats.Campaign.failed;
  (* deterministic failure kinds are never retried *)
  let spin = Ptaint_asm.Assembler.assemble_exn ".text\nmain: j main\n" in
  let cfg = Ptaint_sim.Sim.Config.(default |> with_max_instructions 1_000_000_000) in
  let results, _ =
    Campaign.run ~domains:1 ~job_timeout:0.2 ~retries:3 ~backoff:0.001
      [ Campaign.job ~name:"spin" ~config:cfg spin ]
  in
  match results with
  | [ r ] -> (
    Alcotest.(check int) "timeout not retried" 1 r.Campaign.attempts;
    match r.Campaign.status with
    | Campaign.Failed f ->
      Alcotest.(check string) "classified as timeout" "timeout"
        (Campaign.kind_name f.Campaign.kind)
    | Campaign.Finished _ -> Alcotest.fail "spinning guest must time out")
  | _ -> Alcotest.fail "expected one result"

let test_worker_backtrace () =
  let boom = Campaign.job_thunk ~name:"boom" (fun () -> failwith "kaboom") in
  let results, _ = Campaign.run ~domains:2 ~retries:1 ~backoff:0.001 [ boom ] in
  match results with
  | [ r ] -> (
    (match r.Campaign.status with
     | Campaign.Failed f ->
       Alcotest.(check bool) "worker backtrace captured" true
         (contains f.Campaign.backtrace "Raised")
     | Campaign.Finished _ -> Alcotest.fail "boom must fail");
    Alcotest.(check int) "crash retried once" 2 r.Campaign.attempts;
    match Campaign.result_exn r with
    | _ -> Alcotest.fail "result_exn on a failed job must raise"
    | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the kind" true (contains msg "crashed");
      Alcotest.(check bool) "message counts attempts" true (contains msg "2 attempt");
      Alcotest.(check bool) "message carries the worker frames" true
        (contains msg "Raised"))
  | _ -> Alcotest.fail "expected one result"

let test_guest_fault_classified () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let benign =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c
    | None -> Alcotest.fail "exp1 should have a benign case"
  in
  let bad = Ptaint_asm.Assembler.assemble_exn ".text\nmain: li $v0, 999\n      syscall\n" in
  let jobs =
    [ Campaign.job ~name:"healthy" ~config:(benign.Scenario.config program) program;
      Campaign.job ~name:"bad-syscall" ~config:(Ptaint_sim.Sim.Config.default) bad;
      Campaign.job ~name:"healthy-2" ~config:(benign.Scenario.config program) program ]
  in
  let results, stats = Campaign.run ~domains:3 jobs in
  (match results with
   | [ h1; badr; h2 ] ->
     (match (h1.Campaign.status, h2.Campaign.status) with
      | Campaign.Finished _, Campaign.Finished _ -> ()
      | _ -> Alcotest.fail "neighbours of the faulting guest must finish");
     (match badr.Campaign.status with
      | Campaign.Failed { kind = Campaign.Guest_fault { sysnum; _ }; _ } ->
        Alcotest.(check int) "faulting syscall number" 999 sysnum
      | _ -> Alcotest.fail "unknown syscall must classify as Guest_fault")
   | _ -> Alcotest.fail "expected three results");
  Alcotest.(check int) "one failure" 1 stats.Campaign.failed

let test_loader_error_classified () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let huge_argv = Ptaint_sim.Sim.Config.(default |> with_argv [ "prog"; String.make 2_000_000 'A' ]) in
  let jobs =
    [ Campaign.job ~name:"oversized-argv" ~config:huge_argv program;
      Campaign.job_thunk ~name:"bad-asm" (fun () ->
          Ptaint_sim.Sim.run_asm ".data\nx: .space -4\n") ]
  in
  let results, _ = Campaign.run ~domains:2 jobs in
  match results with
  | [ argv_r; asm_r ] ->
    (match argv_r.Campaign.status with
     | Campaign.Failed { kind = Campaign.Loader_error { where; _ }; _ } ->
       Alcotest.(check string) "argv validation failed" "arguments" where
     | _ -> Alcotest.fail "oversized argv must classify as Loader_error");
    (match asm_r.Campaign.status with
     | Campaign.Failed { kind = Campaign.Loader_error { where; _ }; _ } ->
       Alcotest.(check bool) "assembler error carries the line" true
         (contains where "line")
     | _ -> Alcotest.fail "malformed assembly must classify as Loader_error")
  | _ -> Alcotest.fail "expected two results"

let test_watchdog_in_batch () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let benign =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c
    | None -> Alcotest.fail "exp1 should have a benign case"
  in
  let spin = Ptaint_asm.Assembler.assemble_exn ".text\nmain: j main\n" in
  let spin_cfg = Ptaint_sim.Sim.Config.(default |> with_max_instructions 1_000_000_000) in
  let jobs =
    [ Campaign.job ~name:"healthy" ~config:(benign.Scenario.config program) program;
      Campaign.job ~name:"spin" ~config:spin_cfg spin;
      Campaign.job ~name:"healthy-2" ~config:(benign.Scenario.config program) program ]
  in
  let results, stats = Campaign.run ~domains:2 ~job_timeout:0.3 jobs in
  (match results with
   | [ h1; spun; h2 ] ->
     (match (h1.Campaign.status, h2.Campaign.status) with
      | Campaign.Finished _, Campaign.Finished _ -> ()
      | _ -> Alcotest.fail "healthy jobs must not be hit by the neighbour's watchdog");
     (match spun.Campaign.status with
      | Campaign.Failed { kind = Campaign.Timeout { seconds }; _ } ->
        Alcotest.(check bool) "timeout reports the configured budget" true
          (seconds = 0.3)
      | _ -> Alcotest.fail "spinning guest must be reported as Timeout")
   | _ -> Alcotest.fail "expected three results");
  Alcotest.(check int) "exactly one failure" 1 stats.Campaign.failed;
  Alcotest.(check int) "all jobs accounted for" 3 stats.Campaign.jobs

(* --- submission order --- *)

let test_order () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let atk = Scenario.attack Catalog.exp1_stack_smash in
  let jobs =
    List.init 16 (fun i ->
        Campaign.job ~name:(Printf.sprintf "job-%02d" i)
          ~config:(atk.Scenario.config program) program)
  in
  let results, _ = Campaign.run ~domains:8 jobs in
  Alcotest.(check (list string))
    "results in submission order"
    (List.init 16 (Printf.sprintf "job-%02d"))
    (List.map (fun (r : Campaign.job_result) -> r.Campaign.name) results)

(* --- snapshot templates: restore must equal reload --- *)

let result_fingerprint (r : Ptaint_sim.Sim.result) =
  Printf.sprintf "%s | out:%s | net:%s | %d insns | %d sys | uid %d"
    (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome r.Ptaint_sim.Sim.outcome)
    (String.escaped r.Ptaint_sim.Sim.stdout)
    (String.escaped (String.concat "&" r.Ptaint_sim.Sim.net_sent))
    r.Ptaint_sim.Sim.instructions r.Ptaint_sim.Sim.syscalls r.Ptaint_sim.Sim.final_uid

let test_template_restore_determinism () =
  let module Sim = Ptaint_sim.Sim in
  let s = Catalog.exp1_stack_smash in
  let program = s.Scenario.build () in
  let atk_config = (Scenario.attack s).Scenario.config program in
  let tpl = Sim.prepare ~config:atk_config program in
  let reference = Sim.run ~config:atk_config program in
  (* Restoring the same snapshot repeatedly must reproduce the
     reference run bit for bit. *)
  let r1 = Sim.run_template ~config:atk_config tpl in
  let r2 = Sim.run_template ~config:atk_config tpl in
  Alcotest.(check string) "restore = reload"
    (result_fingerprint reference) (result_fingerprint r1);
  Alcotest.(check string) "second restore identical"
    (result_fingerprint r1) (result_fingerprint r2);
  (* The same template serves any policy (only argv/env/sources are
     baked into the image)... *)
  let unprotected =
    { atk_config with Ptaint_sim.Sim.policy = Ptaint_cpu.Policy.unprotected }
  in
  Alcotest.(check string) "other policy via same template"
    (result_fingerprint (Sim.run ~config:unprotected program))
    (result_fingerprint (Sim.run_template ~config:unprotected tpl));
  (* ...but a config disagreeing on the image-shaping fields is refused. *)
  match Sim.boot_template ~config:{ atk_config with Ptaint_sim.Sim.argv = [ "other" ] } tpl with
  | _ -> Alcotest.fail "boot_template must reject a mismatched argv"
  | exception Invalid_argument _ -> ()

let test_campaign_rerun_identical () =
  let jobs = coverage_jobs () in
  let first, _ = Campaign.run ~domains:4 jobs in
  let second, _ = Campaign.run ~domains:4 jobs in
  Alcotest.(check (list string))
    "re-running the campaign (fresh snapshots) is bit-identical"
    (List.map fingerprint first) (List.map fingerprint second)

(* --- streaming aggregation: run_stream vs the batch path --- *)

module Job = Ptaint_campaign.Job
module Checkpoint = Ptaint_campaign.Checkpoint

let stream_jobs () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let atk = (Scenario.attack Catalog.exp1_stack_smash).Scenario.config program in
  let policies =
    [ Ptaint_cpu.Policy.unprotected; Ptaint_cpu.Policy.control_only;
      Ptaint_cpu.Policy.default ]
  in
  List.concat_map
    (fun i ->
      List.map
        (fun policy ->
          Job.make
            ~tag:(Printf.sprintf "stream-%02d" i)
            ~config:{ atk with Ptaint_sim.Sim.policy }
            (Job.Image program))
        policies)
    (List.init 4 Fun.id)

let test_stream_matches_batch () =
  let jobs = stream_jobs () in
  let _, batch_stats = Campaign.run_jobs ~domains:4 jobs in
  let reference = Campaign.metrics_table batch_stats in
  List.iter
    (fun domains ->
      let tally, cursor = Campaign.run_stream ~domains (List.to_seq jobs) in
      Alcotest.(check int)
        (Printf.sprintf "cursor covers every job at -j%d" domains)
        (List.length jobs) cursor;
      Alcotest.(check string)
        (Printf.sprintf "streamed metrics table = batch table at -j%d" domains)
        reference
        (Campaign.metrics_table (Campaign.tally_stats tally)))
    [ 1; 4 ]

let test_stream_sink_accounts_for_failures () =
  (* every job — finished, timed out, crashed, malformed — must yield
     exactly one in-order JSONL line and exactly one tally entry *)
  let ok i =
    Job.make ~tag:(Printf.sprintf "ok-%d" i)
      (Job.Asm_source ".text\nmain: li $v0, 1\n li $a0, 0\n syscall\n")
  in
  let spin =
    Job.with_timeout 0.2
      (Job.make ~tag:"spin"
         ~config:Ptaint_sim.Sim.Config.(default |> with_max_instructions 1_000_000_000)
         (Job.Asm_source ".text\nmain: j main\n"))
  in
  let bad_c = Job.make ~tag:"bad-c" (Job.C_source "int main( { return 0; }") in
  let crash =
    (* an injection into a non-existent register slot raises inside the
       worker — the one failure kind classified as Crashed *)
    Job.with_injections
      [ { Ptaint_fi.Fi.at = 1; fault = Ptaint_fi.Fi.Reg_taint_loss { slot = 999 } } ]
      (ok 99)
  in
  let jobs = [ ok 0; spin; ok 1; bad_c; crash; ok 2 ] in
  let lines = ref [] in
  let tally, cursor =
    Campaign.run_stream ~domains:3
      ~on_result:(fun s -> lines := Campaign.jsonl_of_summary s :: !lines)
      (List.to_seq jobs)
  in
  let lines = List.rev !lines in
  Alcotest.(check int) "one JSONL line per job" (List.length jobs) (List.length lines);
  Alcotest.(check int) "cursor = job count" (List.length jobs) cursor;
  Alcotest.(check int) "every job tallied" (List.length jobs) (Campaign.tally_jobs tally);
  let stats = Campaign.tally_stats tally in
  Alcotest.(check int) "three failures counted" 3 stats.Campaign.failed;
  List.iteri
    (fun i line ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d carries its submission index" i)
        true
        (contains line (Printf.sprintf "\"i\":%d," i)))
    lines;
  List.iter2
    (fun (j : Job.t) line ->
      Alcotest.(check bool)
        (Printf.sprintf "line for %s names its job" j.Job.tag)
        true
        (contains line (Printf.sprintf "\"tag\":%S" j.Job.tag)))
    jobs lines

let test_checkpoint_roundtrip () =
  let tally, cursor = Campaign.run_stream ~domains:2 (List.to_seq (stream_jobs ())) in
  let m =
    { Checkpoint.id = "campaign-test v1"; total = 42; cursor;
      elapsed_us = 123_456_789; dump = Campaign.dump_tally tally }
  in
  let path = Filename.temp_file "ptaint-ckpt" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Checkpoint.save ~path m;
  (match Checkpoint.load ~path with
   | Error e -> Alcotest.fail ("manifest failed to load: " ^ e)
   | Ok m' ->
     Alcotest.(check bool) "manifest round-trips exactly" true (m' = m);
     Alcotest.(check string) "reloaded tally renders byte-identically"
       (Campaign.metrics_table (Campaign.tally_stats tally))
       (Campaign.metrics_table
          (Campaign.tally_stats (Campaign.load_tally m'.Checkpoint.dump))));
  (* a manifest written before elapsed_us existed must still load *)
  let text = In_channel.with_open_bin path In_channel.input_all in
  let legacy =
    String.concat "\n"
      (List.filter
         (fun l -> not (String.length l >= 10 && String.sub l 0 10 = "elapsed_us"))
         (String.split_on_char '\n' text))
  in
  let oc = open_out_bin path in
  output_string oc legacy;
  close_out oc;
  match Checkpoint.load ~path with
  | Error e -> Alcotest.fail ("legacy manifest refused: " ^ e)
  | Ok m' ->
    Alcotest.(check int) "absent elapsed_us reads as zero" 0
      m'.Checkpoint.elapsed_us;
    Alcotest.(check bool) "rest of the legacy manifest intact" true
      (m'.Checkpoint.dump = m.Checkpoint.dump && m'.Checkpoint.cursor = m.Checkpoint.cursor)

let test_truncate_jsonl () =
  let path = Filename.temp_file "ptaint-sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out path in
  for i = 0 to 9 do Printf.fprintf oc "{\"i\":%d}\n" i done;
  close_out oc;
  (match Checkpoint.truncate_jsonl ~path ~lines:4 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr n
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "sink trimmed to the manifest cursor" 4 !n;
  (match Checkpoint.truncate_jsonl ~path ~lines:9 with
   | Ok () -> Alcotest.fail "a sink shorter than the cursor must be refused"
   | Error _ -> ());
  (match Checkpoint.truncate_jsonl ~path ~lines:0 with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "lines=0 removes the sink" false (Sys.file_exists path)

(* --- Sim conveniences --- *)

let test_run_many () =
  let program = Catalog.exp1_stack_smash.Scenario.build () in
  let atk = Scenario.attack Catalog.exp1_stack_smash in
  let benign =
    match Scenario.benign Catalog.exp1_stack_smash with
    | Some c -> c
    | None -> Alcotest.fail "exp1 should have a benign case"
  in
  let configs = [ atk.Scenario.config program; benign.Scenario.config program ] in
  let batch = List.map (fun c -> (c, program)) configs in
  let parallel = Ptaint_sim.Sim.run_many ~domains:2 batch in
  let sequential = List.map (fun c -> Ptaint_sim.Sim.run ~config:c program) configs in
  List.iter2
    (fun (a : Ptaint_sim.Sim.result) (b : Ptaint_sim.Sim.result) ->
      Alcotest.(check string) "same outcome"
        (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome a.Ptaint_sim.Sim.outcome)
        (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome b.Ptaint_sim.Sim.outcome);
      Alcotest.(check int) "same instructions" a.Ptaint_sim.Sim.instructions
        b.Ptaint_sim.Sim.instructions)
    sequential parallel

let test_config_of () =
  let mode label =
    (Ptaint_sim.Sim.config_of ~label ()).Ptaint_sim.Sim.policy.Ptaint_cpu.Policy.mode
  in
  Alcotest.(check bool) "full = pointer taintedness" true
    (mode "full" = Ptaint_cpu.Policy.Pointer_taintedness);
  Alcotest.(check bool) "minos alias" true
    (mode "minos" = Ptaint_cpu.Policy.Control_data_only);
  Alcotest.(check bool) "none" true (mode "none" = Ptaint_cpu.Policy.No_protection);
  (match Ptaint_sim.Sim.config_of ~label:"bogus" () with
   | _ -> Alcotest.fail "unknown label must be rejected"
   | exception Invalid_argument _ -> ());
  match Ptaint_sim.Sim.policy_of_label "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "policy_of_label must reject unknown labels"

let () =
  Alcotest.run "campaign"
    [ ( "pool",
        [ Alcotest.test_case "order-preserving map" `Quick test_pool_map;
          Alcotest.test_case "exception propagation" `Quick test_pool_raise ] );
      ( "engine",
        [ Alcotest.test_case "determinism: full coverage matrix" `Slow test_determinism;
          Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
          Alcotest.test_case "submission order" `Quick test_order ] );
      ( "failure taxonomy",
        [ Alcotest.test_case "retry transient, never deterministic" `Quick
            test_retry_transient;
          Alcotest.test_case "worker backtrace preserved" `Quick test_worker_backtrace;
          Alcotest.test_case "guest fault classified" `Quick test_guest_fault_classified;
          Alcotest.test_case "loader errors classified" `Quick
            test_loader_error_classified;
          Alcotest.test_case "watchdog timeout in batch" `Quick test_watchdog_in_batch ] );
      ( "streaming",
        [ Alcotest.test_case "stream = batch metrics table" `Quick
            test_stream_matches_batch;
          Alcotest.test_case "sink accounts for every job" `Quick
            test_stream_sink_accounts_for_failures;
          Alcotest.test_case "checkpoint manifest round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "sink truncation on resume" `Quick test_truncate_jsonl ] );
      ( "snapshots",
        [ Alcotest.test_case "template restore = reload" `Quick
            test_template_restore_determinism;
          Alcotest.test_case "campaign rerun bit-identical" `Slow
            test_campaign_rerun_identical ] );
      ( "sim API",
        [ Alcotest.test_case "run_many" `Quick test_run_many;
          Alcotest.test_case "config_of labels" `Quick test_config_of ] ) ]
