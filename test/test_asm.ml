(* Assembler, loader and whole-system (Sim) tests. *)

open Ptaint_isa
open Ptaint_asm

let assemble src =
  match Assembler.assemble src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly failed: %a" Assembler.pp_error e

let expect_error src =
  match Assembler.assemble src with
  | Ok _ -> Alcotest.fail "expected assembly error"
  | Error _ -> ()

(* --- Lexer --- *)

let test_lexer () =
  (match Lexer.tokenize "  lw $t0, 4($sp)  # comment" with
   | Ok [ Ident "lw"; Register 8; Comma; Int 4; Lparen; Register 29; Rparen ] -> ()
   | Ok ts ->
     Alcotest.failf "unexpected tokens: %s"
       (String.concat " " (List.map (Format.asprintf "%a" Lexer.pp_token) ts))
   | Error e -> Alcotest.fail e);
  (match Lexer.tokenize {|.asciiz "a\n\x41b"|} with
   | Ok [ Ident ".asciiz"; Str "a\nAb" ] -> ()
   | _ -> Alcotest.fail "string escapes");
  (match Lexer.tokenize "li $a0, 'x'" with
   | Ok [ Ident "li"; Register 4; Comma; Int 120 ] -> ()
   | _ -> Alcotest.fail "char literal");
  (match Lexer.tokenize "li $a0, -0x10" with
   | Ok [ Ident "li"; Register 4; Comma; Int (-16) ] -> ()
   | _ -> Alcotest.fail "negative hex");
  match Lexer.tokenize "mov $zz" with Error _ -> () | Ok _ -> Alcotest.fail "bad register"

(* --- Assembler --- *)

let test_basic_program () =
  let p =
    assemble
      {|
        .text
main:   addiu $sp, $sp, -8
        li $v0, 42
        jr $ra
        .data
msg:    .asciiz "hi"
val:    .word 7, msg
|}
  in
  Alcotest.(check int) "entry at main" p.Program.text_base p.Program.entry;
  Alcotest.(check int) "3 instructions" 3 (Array.length p.Program.insns);
  (match p.Program.insns.(0) with
   | Insn.I (ADDIU, 29, 29, -8) -> ()
   | i -> Alcotest.failf "insn 0: %s" (Insn.to_string i));
  let msg = Program.symbol_exn p "msg" in
  Alcotest.(check int) "msg at data base" p.Program.data_base msg;
  Alcotest.(check string) "string bytes" "hi\000" (String.sub p.Program.data 0 3);
  (* .word initialiser with a label reference *)
  let word_off = Program.symbol_exn p "val" - p.Program.data_base in
  let word_at off =
    Char.code p.Program.data.[off]
    lor (Char.code p.Program.data.[off + 1] lsl 8)
    lor (Char.code p.Program.data.[off + 2] lsl 16)
    lor (Char.code p.Program.data.[off + 3] lsl 24)
  in
  Alcotest.(check int) "word 7" 7 (word_at word_off);
  Alcotest.(check int) "word msg" msg (word_at (word_off + 4))

let test_li_expansion () =
  let p = assemble ".text\nli $t0, 5\nli $t1, 0x12340000\nli $t2, 0x12345678\n" in
  Alcotest.(check int) "lengths 1+1+2" 4 (Array.length p.Program.insns);
  (match p.Program.insns.(0) with
   | Insn.I (ADDIU, 8, 0, 5) -> ()
   | i -> Alcotest.failf "small li: %s" (Insn.to_string i));
  match (p.Program.insns.(2), p.Program.insns.(3)) with
  | Insn.Lui (10, 0x1234), Insn.I (ORI, 10, 10, 0x5678) -> ()
  | a, b -> Alcotest.failf "big li: %s / %s" (Insn.to_string a) (Insn.to_string b)

let test_branch_pseudos () =
  let p =
    assemble
      {|
        .text
loop:   blt $t0, $t1, loop
        bge $t0, $t1, after
after:  beqz $t0, loop
        b loop
|}
  in
  (match p.Program.insns.(0) with
   | Insn.R (SLT, 1, 8, 9) -> ()
   | i -> Alcotest.failf "blt slt: %s" (Insn.to_string i));
  (match p.Program.insns.(1) with
   | Insn.Branch2 (BNE, 1, 0, off) -> Alcotest.(check int) "back edge" (-2) off
   | i -> Alcotest.failf "blt branch: %s" (Insn.to_string i));
  match p.Program.insns.(3) with
  | Insn.Branch2 (BEQ, 1, 0, 0) -> ()
  | i -> Alcotest.failf "bge fallthrough: %s" (Insn.to_string i)

let test_la_lw_symbol () =
  let p = assemble ".text\nla $a0, buf\nlw $t0, buf\n.data\nbuf: .space 8\n" in
  let buf = Program.symbol_exn p "buf" in
  (match (p.Program.insns.(0), p.Program.insns.(1)) with
   | Insn.Lui (4, hi), Insn.I (ORI, 4, 4, lo) ->
     Alcotest.(check int) "la resolves" buf ((hi lsl 16) lor lo)
   | _ -> Alcotest.fail "la shape");
  match (p.Program.insns.(2), p.Program.insns.(3)) with
  | Insn.Lui (1, hi), Insn.Load (LW, 8, lo, 1) ->
    Alcotest.(check int) "lw sym resolves" buf (Word.of_int ((hi lsl 16) + lo))
  | a, b -> Alcotest.failf "lw sym shape: %s / %s" (Insn.to_string a) (Insn.to_string b)

let test_alignment () =
  let p = assemble ".data\n.byte 1\n.align 2\nw: .word 2\n" in
  Alcotest.(check int) "aligned" (p.Program.data_base + 4) (Program.symbol_exn p "w")

let test_errors () =
  expect_error ".text\nfoo $t0\n";
  expect_error ".text\nadd $t0, $t1\n";
  expect_error ".text\nj nowhere\n";
  expect_error ".text\nx: nop\nx: nop\n";
  expect_error ".text\n.word 1\n";
  expect_error ".data\nadd $t0, $t1, $t2\n"

(* malformed-input corpus: every rejection must be the typed error
   with the right 1-based source line, so campaign consumers can
   classify and report without string-matching exception text *)
let test_error_positions () =
  let corpus =
    [ (".text\nfoo $t0\n", 2, "unknown");
      (".text\nnop\nadd $t0, $t1\n", 3, "register");
      (".text\nj nowhere\n", 2, "undefined");
      (".text\nx: nop\nnop\nx: nop\n", 4, "duplicate");
      (".data\nbuf: .space -4\n", 2, "negative");
      (".data\nbuf: .space nonsense\n", 2, "");
      (".text\nlw $t0, 4(nonsense)\n", 2, "") ]
  in
  List.iter
    (fun (src, line, needle) ->
      match Assembler.assemble src with
      | Ok _ -> Alcotest.failf "corpus entry must be rejected: %S" src
      | Error e ->
        Alcotest.(check int) (Printf.sprintf "line of %S" src) line e.Assembler.line;
        let msg = String.lowercase_ascii e.Assembler.message in
        if needle <> "" then
          Alcotest.(check bool)
            (Printf.sprintf "message %S mentions %S" e.Assembler.message needle)
            true
            (let n = String.length needle in
             let rec go i =
               i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1))
             in
             go 0))
    corpus;
  (* assemble_exn raises the same information as a typed exception *)
  (match Assembler.assemble_exn ".text\nnop\nfoo\n" with
   | _ -> Alcotest.fail "assemble_exn must raise on malformed input"
   | exception Assembler.Asm_error { line; _ } ->
     Alcotest.(check int) "exception carries the line" 3 line);
  (* the loader's own validation is typed too: an argv block that
     cannot fit the stack is a Loader.Error naming the field *)
  let p = assemble ".text\nmain: jr $ra\n" in
  match Loader.load ~argv:[ String.make 2_000_000 'A' ] p with
  | _ -> Alcotest.fail "oversized argv must be rejected"
  | exception Loader.Error { where; _ } ->
    Alcotest.(check string) "names the offending field" "arguments" where

let test_disassemble_listing () =
  let p = assemble ".text\nnop\njr $ra\n" in
  let listing = Program.disassemble p in
  Alcotest.(check bool) "has addresses" true
    (String.length listing > 0 && listing.[0] = '0')

(* --- Loader --- *)

let test_loader_argv () =
  let p = assemble ".text\nnop\n" in
  let image = Loader.load ~argv:[ "prog"; "-g"; "123" ] p in
  let mem = image.Loader.mem in
  let sp = image.Loader.initial_sp in
  let argc = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem sp) in
  Alcotest.(check int) "argc" 3 argc;
  let argv1 = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word mem (sp + 8)) in
  Alcotest.(check string) "argv[1]" "-g" (Ptaint_mem.Memory.read_cstring mem argv1);
  (* argv strings are tainted (command line is external input) *)
  Alcotest.(check int) "argv bytes tainted" 2 (Ptaint_mem.Memory.tainted_in_range mem argv1 2);
  (* the argv pointer array itself is not *)
  Alcotest.(check bool) "argv array untainted" false
    (Ptaint_taint.Tword.is_tainted (Ptaint_mem.Memory.load_word mem (sp + 8)))

let test_loader_untainted_argv_policy () =
  let p = assemble ".text\nnop\n" in
  let image = Loader.load ~argv:[ "prog"; "xyz" ] ~sources:Ptaint_os.Sources.none p in
  let sp = image.Loader.initial_sp in
  let argv1 = Ptaint_taint.Tword.value (Ptaint_mem.Memory.load_word image.Loader.mem (sp + 8)) in
  Alcotest.(check int) "no taint" 0 (Ptaint_mem.Memory.tainted_in_range image.Loader.mem argv1 3)

(* --- Whole-system smoke tests --- *)

let test_sim_hello () =
  let r =
    Ptaint_sim.Sim.run_asm
      {|
        .text
main:   li $v0, 3          # sys_write
        li $a0, 1          # stdout
        la $a1, msg
        li $a2, 6
        syscall
        li $v0, 1          # sys_exit
        li $a0, 0
        syscall
        .data
msg:    .ascii "hello\n"
|}
  in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check string) "stdout" "hello\n" r.Ptaint_sim.Sim.stdout

let echo_asm =
  {|
        .text
main:   li $v0, 2          # sys_read
        li $a0, 0          # stdin
        la $a1, buf
        li $a2, 64
        syscall
        move $a2, $v0      # echo as many bytes as read
        li $v0, 3
        li $a0, 1
        la $a1, buf
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        .data
buf:    .space 64
|}

let test_sim_echo_taints () =
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "attack") in
  let r = Ptaint_sim.Sim.run_asm ~config echo_asm in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check string) "echoed" "attack" r.Ptaint_sim.Sim.stdout;
  Alcotest.(check int) "input bytes counted" 6 r.Ptaint_sim.Sim.input_bytes;
  (* the read buffer is tainted in memory *)
  let buf = Program.symbol_exn r.Ptaint_sim.Sim.image.Loader.program "buf" in
  Alcotest.(check int) "buffer tainted" 6
    (Ptaint_mem.Memory.tainted_in_range r.Ptaint_sim.Sim.image.Loader.mem buf 6)

let deref_input_asm =
  (* Reads 4 bytes from stdin, uses them as a pointer — the minimal
     pointer-taintedness attack. *)
  {|
        .text
main:   li $v0, 2
        li $a0, 0
        la $a1, buf
        li $a2, 4
        syscall
        lw $t0, buf        # load tainted word
        lw $t1, 0($t0)     # dereference it -> alert
        li $v0, 1
        li $a0, 0
        syscall
        .data
buf:    .space 4
|}

let test_sim_detects_tainted_deref () =
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "aaaa") in
  let r = Ptaint_sim.Sim.run_asm ~config deref_input_asm in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a ->
    Alcotest.(check bool) "load detector" true (a.Ptaint_cpu.Machine.kind = Ptaint_cpu.Machine.Load_address);
    Alcotest.(check int) "tainted value is 'aaaa'" 0x61616161
      (Ptaint_taint.Tword.value a.Ptaint_cpu.Machine.reg_value)
  | o -> Alcotest.failf "expected alert, got %a" Ptaint_sim.Sim.pp_outcome o

let test_sim_unprotected_crashes () =
  let config =
    Ptaint_sim.Sim.Config.(default |> with_policy Ptaint_cpu.Policy.unprotected |> with_stdin "aaaa")
  in
  let r = Ptaint_sim.Sim.run_asm ~config deref_input_asm in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Fault _ -> ()
  | o -> Alcotest.failf "expected fault, got %a" Ptaint_sim.Sim.pp_outcome o

let test_sim_network_session () =
  let r =
    Ptaint_sim.Sim.run_asm
      ~config:(Ptaint_sim.Sim.Config.(default |> with_sessions [ [ "PING" ] ]))
      {|
        .text
main:   li $v0, 9          # socket
        syscall
        move $s0, $v0
        li $v0, 10         # accept
        move $a0, $s0
        syscall
        move $s1, $v0
        li $v0, 7          # recv
        move $a0, $s1
        la $a1, buf
        li $a2, 64
        syscall
        li $v0, 8          # send
        move $a0, $s1
        la $a1, pong
        li $a2, 4
        syscall
        li $v0, 1
        li $a0, 0
        syscall
        .data
buf:    .space 64
pong:   .ascii "PONG"
|}
  in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check (list string)) "sent" [ "PONG" ] r.Ptaint_sim.Sim.net_sent;
  (* network data is tainted *)
  let buf = Program.symbol_exn r.Ptaint_sim.Sim.image.Loader.program "buf" in
  Alcotest.(check int) "recv tainted" 4
    (Ptaint_mem.Memory.tainted_in_range r.Ptaint_sim.Sim.image.Loader.mem buf 4)

let test_sim_timing () =
  let config = Ptaint_sim.Sim.Config.(default |> with_timing true |> with_stdin "hi") in
  let r = Ptaint_sim.Sim.run_asm ~config echo_asm in
  match r.Ptaint_sim.Sim.cycles with
  | Some c -> Alcotest.(check bool) "cycles > instructions" true (c > r.Ptaint_sim.Sim.instructions)
  | None -> Alcotest.fail "expected cycle count"

(* --- Round-trip property: assemble → encode → decode → same --- *)

let prop_text_encodes =
  QCheck2.Test.make ~name:"assembled text encodes and decodes" ~count:50
    QCheck2.Gen.(int_range 1 20)
    (fun n ->
      let body =
        List.init n (fun i ->
            Printf.sprintf "add $t%d, $t%d, $t%d" (i mod 8) ((i + 1) mod 8) ((i + 2) mod 8))
        |> String.concat "\n"
      in
      let p = assemble (".text\n" ^ body ^ "\njr $ra\n") in
      Array.for_all
        (fun i ->
          match Encode.decode ~pc:0x400000 (Encode.encode i) with
          | Ok i' -> Insn.equal i i'
          | Error _ -> false)
        p.Program.insns)

let () =
  Alcotest.run "asm"
    [ ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "assembler",
        [ Alcotest.test_case "basic program" `Quick test_basic_program;
          Alcotest.test_case "li expansion" `Quick test_li_expansion;
          Alcotest.test_case "branch pseudos" `Quick test_branch_pseudos;
          Alcotest.test_case "la / lw symbol" `Quick test_la_lw_symbol;
          Alcotest.test_case "alignment" `Quick test_alignment;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "malformed corpus: typed positions" `Quick
            test_error_positions;
          Alcotest.test_case "listing" `Quick test_disassemble_listing ] );
      ( "loader",
        [ Alcotest.test_case "argv layout + taint" `Quick test_loader_argv;
          Alcotest.test_case "source policy" `Quick test_loader_untainted_argv_policy ] );
      ( "sim",
        [ Alcotest.test_case "hello world" `Quick test_sim_hello;
          Alcotest.test_case "echo taints input" `Quick test_sim_echo_taints;
          Alcotest.test_case "tainted deref detected" `Quick test_sim_detects_tainted_deref;
          Alcotest.test_case "unprotected crashes" `Quick test_sim_unprotected_crashes;
          Alcotest.test_case "network session" `Quick test_sim_network_session;
          Alcotest.test_case "timing mode" `Quick test_sim_timing ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_text_encodes ]) ]
