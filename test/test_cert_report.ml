(* CERT survey data (Figure 1) and the report-rendering helpers. *)

let test_totals () =
  Alcotest.(check int) "107 advisories" 107 (List.length Ptaint_cert.Cert.advisories);
  let mem, total, share = Ptaint_cert.Cert.memory_corruption_share () in
  Alcotest.(check int) "total" 107 total;
  Alcotest.(check int) "memory corruption count" 72 mem;
  Alcotest.(check bool) "~67%" true (share > 66.0 && share < 68.0)

let test_breakdown () =
  let b = Ptaint_cert.Cert.breakdown () in
  Alcotest.(check int) "six categories" 6 (List.length b);
  Alcotest.(check int) "counts sum to total" 107 (List.fold_left (fun a (_, n) -> a + n) 0 b);
  (* buffer overflow leads, and memory-corruption categories come first *)
  (match b with
   | (Ptaint_cert.Cert.Buffer_overflow, n) :: _ ->
     Alcotest.(check bool) "buffer overflow dominates" true (n >= 40)
   | _ -> Alcotest.fail "buffer overflow should sort first");
  match List.rev b with
  | (Ptaint_cert.Cert.Other, _) :: _ -> ()
  | _ -> Alcotest.fail "non-memory-corruption category should sort last"

let test_years () =
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "%s year in range" a.Ptaint_cert.Cert.id)
        true
        (a.Ptaint_cert.Cert.year >= 2000 && a.Ptaint_cert.Cert.year <= 2003))
    Ptaint_cert.Cert.advisories

(* --- report rendering --- *)

let test_table () =
  let t =
    Ptaint_report.Report.table ~headers:[ "a"; "bb" ] [ [ "x"; "y" ]; [ "long"; "z" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim t) in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (match lines with
   | header :: rule :: _ ->
     Alcotest.(check bool) "header first" true (String.length header >= 5);
     Alcotest.(check bool) "rule dashes" true (String.for_all (fun c -> c = '-') rule)
   | _ -> Alcotest.fail "table shape");
  (* column alignment: "y" starts at the same column as "bb" *)
  match lines with
  | header :: _ :: row1 :: _ ->
    Alcotest.(check int) "aligned columns" (String.index header 'b') (String.index row1 'y')
  | _ -> Alcotest.fail "table shape"

let test_bar_chart () =
  let c = Ptaint_report.Report.bar_chart ~width:10 [ ("big", 100); ("half", 50); ("none", 0) ] in
  let lines = String.split_on_char '\n' (String.trim c) in
  Alcotest.(check int) "3 bars" 3 (List.length lines);
  let count_hashes s = String.fold_left (fun a ch -> if ch = '#' then a + 1 else a) 0 s in
  match lines with
  | [ big; half; none ] ->
    Alcotest.(check int) "full bar" 10 (count_hashes big);
    Alcotest.(check int) "half bar" 5 (count_hashes half);
    Alcotest.(check int) "empty bar" 0 (count_hashes none)
  | _ -> Alcotest.fail "chart shape"

let test_commas () =
  Alcotest.(check string) "small" "7" (Ptaint_report.Report.commas 7);
  Alcotest.(check string) "thousands" "15,139" (Ptaint_report.Report.commas 15139);
  Alcotest.(check string) "millions" "1,234,567" (Ptaint_report.Report.commas 1234567);
  Alcotest.(check string) "negative" "-1,000" (Ptaint_report.Report.commas (-1000))

let test_kv_section () =
  let s = Ptaint_report.Report.kv [ ("key", "v"); ("longer key", "w") ] in
  Alcotest.(check bool) "aligned colons" true
    (String.split_on_char '\n' s
     |> List.filter (fun l -> l <> "")
     |> List.map (fun l -> String.index l ':')
     |> fun idxs -> List.for_all (( = ) (List.hd idxs)) idxs);
  Alcotest.(check bool) "section banner" true
    (String.length (Ptaint_report.Report.section "T") > 10)

let () =
  Alcotest.run "cert+report"
    [ ( "cert (Figure 1)",
        [ Alcotest.test_case "totals" `Quick test_totals;
          Alcotest.test_case "breakdown" `Quick test_breakdown;
          Alcotest.test_case "years" `Quick test_years ] );
      ( "report",
        [ Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "commas" `Quick test_commas;
          Alcotest.test_case "kv + section" `Quick test_kv_section ] ) ]
