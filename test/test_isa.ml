(* Word arithmetic and instruction codec tests. *)

open Ptaint_isa

let check_int = Alcotest.(check int)

let test_word_arith () =
  check_int "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  check_int "to_signed" (-1) (Word.to_signed 0xFFFFFFFF);
  check_int "of_signed" 0xFFFFFFFF (Word.of_signed (-1));
  check_int "sll" 0x10 (Word.sll 1 4);
  check_int "sll wraps" 0x80000000 (Word.sll 1 31);
  check_int "srl" 1 (Word.srl 0x80000000 31);
  check_int "sra negative" 0xFFFFFFFF (Word.sra 0x80000000 31);
  check_int "sign_extend byte" 0xFFFFFF80 (Word.sign_extend ~bits:8 0x80);
  check_int "sign_extend positive" 0x7F (Word.sign_extend ~bits:8 0x7F);
  check_int "byte extract" 0x34 (Word.byte 0x12345678 2);
  check_int "set_byte" 0x12AB5678 (Word.set_byte 0x12345678 2 0xAB);
  Alcotest.(check bool) "lt_signed" true (Word.lt_signed 0xFFFFFFFF 0);
  Alcotest.(check bool) "lt_unsigned" false (Word.lt_unsigned 0xFFFFFFFF 0);
  check_int "mul_lo" (Word.of_int (123 * 456)) (Word.mul_lo 123 456);
  check_int "mul_hi_signed -1*-1" 0 (Word.mul_hi_signed 0xFFFFFFFF 0xFFFFFFFF);
  check_int "mul_hi_unsigned max" 0xFFFFFFFE (Word.mul_hi_unsigned 0xFFFFFFFF 0xFFFFFFFF);
  (* MIPS DIV truncates toward zero: -7 / 4 = -1 rem -3. *)
  Alcotest.(check (pair int int)) "div_signed"
    (Word.of_signed (-1), Word.of_signed (-3))
    (Word.div_signed (Word.of_signed (-7)) 4);
  Alcotest.(check (pair int int)) "div by zero" (0, 7) (Word.div_signed 7 0)

let test_disassembly () =
  let check s i = Alcotest.(check string) s s (Insn.to_string i) in
  check "sw $21,0($3)" (Insn.Store (SW, 21, 0, 3));
  check "lw $3,0($3)" (Insn.Load (LW, 3, 0, 3));
  check "jr $31" (Insn.Jr 31);
  check "add $1,$2,$3" (Insn.R (ADD, 1, 2, 3));
  check "addiu $29,$29,-8" (Insn.I (ADDIU, 29, 29, -8));
  check "sll $4,$5,2" (Insn.Shift (SLL, 4, 5, 2))

let test_reg_names () =
  Alcotest.(check (option int)) "sp" (Some 29) (Reg.of_name "sp");
  Alcotest.(check (option int)) "$sp" (Some 29) (Reg.of_name "$sp");
  Alcotest.(check (option int)) "numeric" (Some 3) (Reg.of_name "3");
  Alcotest.(check (option int)) "bad" None (Reg.of_name "xy");
  Alcotest.(check (option int)) "out of range" None (Reg.of_name "32");
  Alcotest.(check string) "name" "ra" (Reg.name 31)

let test_roundtrip_cases () =
  let cases =
    [ Insn.R (ADD, 1, 2, 3); Insn.R (SLTU, 31, 0, 15); Insn.R (SLLV, 4, 5, 6);
      Insn.R (SRAV, 7, 8, 9);
      Insn.I (ADDIU, 29, 29, -8); Insn.I (ANDI, 4, 5, 0xffff); Insn.I (SLTI, 1, 2, -1);
      Insn.Shift (SLL, 4, 5, 31); Insn.Shift (SRA, 6, 7, 1);
      Insn.Lui (8, 0x1002);
      Insn.Load (LW, 3, 0, 3); Insn.Load (LB, 2, -4, 30); Insn.Load (LHU, 9, 18, 4);
      Insn.Store (SW, 21, 0, 3); Insn.Store (SB, 2, 100, 29);
      Insn.Branch2 (BEQ, 4, 5, -10); Insn.Branch2 (BNE, 0, 2, 100);
      Insn.Branch1 (BLEZ, 3, 5); Insn.Branch1 (BGEZ, 3, -5); Insn.Branch1 (BLTZ, 7, 7);
      Insn.J 0x400100; Insn.Jal 0x400008; Insn.Jr 31; Insn.Jalr (31, 25);
      Insn.Muldiv (MULT, 4, 5); Insn.Muldiv (DIVU, 6, 7);
      Insn.Mfhi 2; Insn.Mflo 3; Insn.Mthi 4; Insn.Mtlo 5;
      Insn.Syscall; Insn.Break 7; Insn.Nop ]
  in
  List.iter
    (fun i ->
      let w = Encode.encode i in
      match Encode.decode ~pc:0x400000 w with
      | Ok i' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" (Insn.to_string i))
          true (Insn.equal i i')
      | Error e -> Alcotest.failf "decode error for %s: %s" (Insn.to_string i) e)
    cases

let test_decode_errors () =
  (match Encode.decode 0xFC000000 with
   | Error _ -> ()
   | Ok i -> Alcotest.failf "expected decode error, got %s" (Insn.to_string i));
  match Encode.decode 0x0000003F with
  | Error _ -> ()
  | Ok i -> Alcotest.failf "expected funct error, got %s" (Insn.to_string i)

(* Random instruction generator for the round-trip property. *)
let insn_gen =
  let open QCheck2.Gen in
  let reg = int_range 0 31 in
  let nonzero_shift_triple =
    (* Avoid SLL $0,$0,0 which canonically decodes to NOP. *)
    triple reg reg (int_range 0 31) >|= fun (rd, rt, sh) ->
    if rd = 0 && rt = 0 && sh = 0 then Insn.Shift (SLL, 1, 0, 0) else Insn.Shift (SLL, rd, rt, sh)
  in
  let imm16 = int_range (-32768) 32767 in
  let uimm16 = int_range 0 65535 in
  let rop =
    oneofl
      [ Insn.ADD; ADDU; SUB; SUBU; AND; OR; XOR; NOR; SLT; SLTU; SLLV; SRLV; SRAV ]
  in
  let iop = oneofl [ Insn.ADDI; ADDIU; SLTI; SLTIU ] in
  let lop = oneofl [ Insn.LB; LBU; LH; LHU; LW ] in
  let sop = oneofl [ Insn.SB; SH; SW ] in
  oneof
    [ (rop >>= fun op -> triple reg reg reg >|= fun (a, b, c) -> Insn.R (op, a, b, c));
      (iop >>= fun op -> triple reg reg imm16 >|= fun (a, b, i) -> Insn.I (op, a, b, i));
      (oneofl [ Insn.ANDI; ORI; XORI ] >>= fun op ->
       triple reg reg uimm16 >|= fun (a, b, i) -> Insn.I (op, a, b, i));
      nonzero_shift_triple;
      (triple reg reg (int_range 0 31) >|= fun (rd, rt, sh) -> Insn.Shift (SRL, rd, rt, sh));
      (pair reg uimm16 >|= fun (r, i) -> Insn.Lui (r, i));
      (lop >>= fun op -> triple reg imm16 reg >|= fun (a, o, b) -> Insn.Load (op, a, o, b));
      (sop >>= fun op -> triple reg imm16 reg >|= fun (a, o, b) -> Insn.Store (op, a, o, b));
      (triple reg reg imm16 >|= fun (a, b, o) -> Insn.Branch2 (BEQ, a, b, o));
      (pair reg imm16 >|= fun (a, o) -> Insn.Branch1 (BGEZ, a, o));
      (int_range 0 0x3FFFFFF >|= fun t -> Insn.J (t lsl 2));
      (reg >|= fun r -> Insn.Jr r);
      (pair reg reg >|= fun (a, b) -> Insn.Jalr (a, b));
      (pair reg reg >|= fun (a, b) -> Insn.Muldiv (MULT, a, b));
      return Insn.Syscall; return Insn.Nop ]

let prop_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"encode/decode roundtrip" insn_gen (fun i ->
      match Encode.decode ~pc:0 (Encode.encode i) with
      | Ok i' -> Insn.equal i i'
      | Error _ -> false)

let prop_word_add_assoc =
  QCheck2.Test.make ~name:"32-bit add associative"
    QCheck2.Gen.(triple (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b, c) -> Word.add (Word.add a b) c = Word.add a (Word.add b c))

let prop_signed_roundtrip =
  QCheck2.Test.make ~name:"to_signed/of_signed roundtrip"
    QCheck2.Gen.(int_range (-0x80000000) 0x7FFFFFFF)
    (fun v -> Word.to_signed (Word.of_signed v) = v)

let () =
  Alcotest.run "isa"
    [ ("word", [ Alcotest.test_case "arithmetic" `Quick test_word_arith ]);
      ( "insn",
        [ Alcotest.test_case "disassembly" `Quick test_disassembly;
          Alcotest.test_case "registers" `Quick test_reg_names ] );
      ( "encode",
        [ Alcotest.test_case "roundtrip cases" `Quick test_roundtrip_cases;
          Alcotest.test_case "decode errors" `Quick test_decode_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_word_add_assoc; prop_signed_roundtrip ] ) ]
