(* Taint-extended memory and cache model tests. *)

open Ptaint_mem
open Ptaint_taint

let base = Layout.data_base

let fresh ?(bytes = 64 * 1024) () =
  let m = Memory.create () in
  Memory.map_range m ~lo:base ~bytes;
  m

let test_byte_roundtrip () =
  let m = fresh () in
  Memory.store_byte m base 0xAB ~taint:true;
  let v, t = Memory.load_byte m base in
  Alcotest.(check int) "value" 0xAB v;
  Alcotest.(check bool) "taint" true t;
  Memory.store_byte m base 0xCD ~taint:false;
  let v, t = Memory.load_byte m base in
  Alcotest.(check int) "overwritten" 0xCD v;
  Alcotest.(check bool) "untainted now" false t

let test_word_roundtrip () =
  let m = fresh () in
  let w = Tword.make ~v:0x12345678 ~m:0b0101 in
  Memory.store_word m (base + 8) w;
  Alcotest.(check bool) "roundtrip" true (Tword.equal w (Memory.load_word m (base + 8)));
  (* Little-endian byte order *)
  Alcotest.(check int) "lsb" 0x78 (fst (Memory.load_byte m (base + 8)));
  Alcotest.(check int) "msb" 0x12 (fst (Memory.load_byte m (base + 11)));
  Alcotest.(check bool) "byte0 tainted" true (snd (Memory.load_byte m (base + 8)));
  Alcotest.(check bool) "byte1 clean" false (snd (Memory.load_byte m (base + 9)))

let test_cross_page_word () =
  let m = fresh () in
  let addr = base + Layout.page_bytes - 2 in
  let w = Tword.make ~v:0xAABBCCDD ~m:0b1001 in
  Memory.store_word m addr w;
  Alcotest.(check bool) "cross-page roundtrip" true (Tword.equal w (Memory.load_word m addr))

let test_unaligned_word () =
  let m = fresh () in
  let w = Tword.tainted 0xDEADBEEF in
  Memory.store_word m (base + 1) w;
  Alcotest.(check bool) "unaligned roundtrip" true (Tword.equal w (Memory.load_word m (base + 1)))

let test_unmapped_fault () =
  let m = fresh () in
  (try
     ignore (Memory.load_byte m 0x61616161);
     Alcotest.fail "expected fault"
   with Memory.Fault { addr; access } ->
     Alcotest.(check int) "addr" 0x61616161 addr;
     Alcotest.(check bool) "kind" true (access = Memory.Load));
  try
    Memory.store_byte m 0x200 0 ~taint:false;
    Alcotest.fail "expected store fault"
  with Memory.Fault { access; _ } -> Alcotest.(check bool) "store" true (access = Memory.Store)

let test_bulk_and_cstring () =
  let m = fresh () in
  Memory.write_string m base "hello\000world" ~taint:true;
  Alcotest.(check string) "read_string" "hello" (Memory.read_string m base 5);
  Alcotest.(check string) "read_cstring stops at NUL" "hello" (Memory.read_cstring m base);
  Alcotest.(check int) "tainted count" 11 (Memory.tainted_in_range m base 11);
  Memory.untaint_range m base 5;
  Alcotest.(check int) "after untaint" 6 (Memory.tainted_in_range m base 11);
  Memory.taint_range m base 2;
  Alcotest.(check int) "after retaint" 8 (Memory.tainted_in_range m base 11)

let test_half () =
  let m = fresh () in
  Memory.store_half m base 0xBEEF ~m:0b10;
  let v, mask = Memory.load_half m base in
  Alcotest.(check int) "half value" 0xBEEF v;
  Alcotest.(check int) "half mask" 0b10 mask

let test_stats () =
  let m = fresh () in
  let s = Memory.stats m in
  let loads0 = s.Memory.loads in
  Memory.store_byte m base 1 ~taint:true;
  ignore (Memory.load_byte m base);
  Alcotest.(check int) "loads counted" (loads0 + 1) s.Memory.loads;
  Alcotest.(check int) "tainted stores" 1 s.Memory.tainted_stores;
  Alcotest.(check int) "tainted loads" 1 s.Memory.tainted_loads

(* A logical access counts once whatever its width: lh/sh must not be
   billed as two byte accesses. *)
let test_stats_width_independent () =
  let m = fresh () in
  let s = Memory.stats m in
  Memory.store_half m base 0xBEEF ~m:0;
  Alcotest.(check int) "one store per sh" 1 s.Memory.stores;
  ignore (Memory.load_half m base);
  Alcotest.(check int) "one load per lh" 1 s.Memory.loads;
  Memory.store_word m (base + 4) (Tword.untainted 42);
  Alcotest.(check int) "one store per sw" 2 s.Memory.stores;
  ignore (Memory.load_word m (base + 4));
  Alcotest.(check int) "one load per lw" 2 s.Memory.loads

(* tainted_in_range must fault on unmapped holes like the other range
   ops, not silently report them as clean. *)
let test_tainted_in_range_unmapped () =
  let m = fresh ~bytes:(64 * 1024) () in
  let last_mapped = base + (64 * 1024) - 8 in
  match Memory.tainted_in_range m last_mapped 16 with
  | _ -> Alcotest.fail "expected a fault on the unmapped tail"
  | exception Memory.Fault { addr; access } ->
    Alcotest.(check int) "first unmapped byte" (base + (64 * 1024)) addr;
    Alcotest.(check bool) "reported as load" true (access = Memory.Load)

let test_snapshot_restore () =
  let m = fresh () in
  Memory.write_string m base "frozen" ~taint:true;
  Memory.store_word m (base + 16) (Tword.make ~v:0xCAFEF00D ~m:0b0011);
  let snap = Memory.snapshot m in
  (* Mutating the origin after the snapshot must not leak into it. *)
  Memory.write_string m base "thawed" ~taint:false;
  Memory.store_word m (base + 16) (Tword.untainted 0);
  let r1 = Memory.restore snap and r2 = Memory.restore snap in
  Alcotest.(check string) "restored data" "frozen" (Memory.read_string r1 base 6);
  Alcotest.(check int) "restored taint" 6 (Memory.tainted_in_range r1 base 6);
  Alcotest.(check bool) "restored word" true
    (Tword.equal (Tword.make ~v:0xCAFEF00D ~m:0b0011) (Memory.load_word r1 (base + 16)));
  (* Two restores are independent: writes to one never reach the other. *)
  Memory.store_byte r1 base 0xEE ~taint:false;
  Alcotest.(check int) "sibling restore unaffected" 0x66 (fst (Memory.load_byte r2 base));
  Alcotest.(check string) "origin keeps its own writes" "thawed" (Memory.read_string m base 6);
  (* Restored stats match the snapshot point, not the origin's later history. *)
  Alcotest.(check int) "snapshot-time mapped bytes" (Memory.stats m).Memory.mapped_bytes
    (Memory.stats r2).Memory.mapped_bytes

(* --- Cache model --- *)

let test_cache_basics () =
  let c = Cache.create { Cache.sets = 4; ways = 1; line_bytes = 16; hit_latency = 1 } in
  Alcotest.(check bool) "first is miss" true (Cache.access c ~addr:0x1000 ~write:false ~tainted:false = Cache.Miss);
  Alcotest.(check bool) "second is hit" true (Cache.access c ~addr:0x1008 ~write:false ~tainted:false = Cache.Hit);
  (* Same set, different tag evicts in a direct-mapped cache. *)
  Alcotest.(check bool) "conflict miss" true (Cache.access c ~addr:0x1040 ~write:false ~tainted:false = Cache.Miss);
  Alcotest.(check bool) "evicted" true (Cache.access c ~addr:0x1000 ~write:false ~tainted:false = Cache.Miss);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 3 st.Cache.misses

let test_cache_taint_summary () =
  let c = Cache.create Cache.l1_config in
  ignore (Cache.access c ~addr:0x2000 ~write:true ~tainted:true);
  Alcotest.(check bool) "line tainted" true (Cache.line_tainted c ~addr:0x2004);
  ignore (Cache.access c ~addr:0x3000 ~write:false ~tainted:false);
  Alcotest.(check bool) "other line clean" false (Cache.line_tainted c ~addr:0x3000)

let test_cache_lru () =
  let c = Cache.create { Cache.sets = 1; ways = 2; line_bytes = 16; hit_latency = 1 } in
  ignore (Cache.access c ~addr:0x000 ~write:false ~tainted:false);
  ignore (Cache.access c ~addr:0x010 ~write:false ~tainted:false);
  ignore (Cache.access c ~addr:0x000 ~write:false ~tainted:false);
  (* 0x010 is now LRU; filling a third line evicts it. *)
  ignore (Cache.access c ~addr:0x020 ~write:false ~tainted:false);
  Alcotest.(check bool) "0x000 still resident" true (Cache.access c ~addr:0x000 ~write:false ~tainted:false = Cache.Hit);
  Alcotest.(check bool) "0x010 evicted" true (Cache.access c ~addr:0x010 ~write:false ~tainted:false = Cache.Miss)

let test_hierarchy_latency () =
  let h = Cache.Hierarchy.create ~memory_latency:100 () in
  let cold = Cache.Hierarchy.access h ~addr:0x4000 ~write:false ~tainted:false in
  let warm = Cache.Hierarchy.access h ~addr:0x4000 ~write:false ~tainted:false in
  Alcotest.(check int) "cold = l1+l2+mem" (1 + 8 + 100) cold;
  Alcotest.(check int) "warm = l1" 1 warm

(* An L1 refill served from L2 must inherit the L2 line's taint
   summary: a tainted line evicted from L1 and later re-fetched is
   still tainted.  Tiny direct-mapped L1 (one set) so a second access
   forces the eviction; 4-set L2 keeps both lines resident. *)
let test_l2_taint_inherited_on_refill () =
  let l1 = { Cache.sets = 1; ways = 1; line_bytes = 16; hit_latency = 1 } in
  let l2 = { Cache.sets = 4; ways = 2; line_bytes = 16; hit_latency = 8 } in
  let h = Cache.Hierarchy.create ~l1 ~l2 ~memory_latency:100 () in
  let a = 0x1000 and b = 0x1010 in
  ignore (Cache.Hierarchy.access h ~addr:a ~write:true ~tainted:true);
  Alcotest.(check bool) "L2 line tainted after fill" true
    (Cache.line_tainted (Cache.Hierarchy.l2 h) ~addr:a);
  ignore (Cache.Hierarchy.access h ~addr:b ~write:false ~tainted:false);
  Alcotest.(check bool) "tainted line evicted from L1" false
    (Cache.line_tainted (Cache.Hierarchy.l1 h) ~addr:a);
  (* Clean re-access: the access itself carries no taint, but the
     refill comes from a tainted L2 line. *)
  ignore (Cache.Hierarchy.access h ~addr:a ~write:false ~tainted:false);
  Alcotest.(check bool) "L1 refill inherits L2 taint" true
    (Cache.line_tainted (Cache.Hierarchy.l1 h) ~addr:a);
  (* Control: a clean line evicted and re-fetched stays clean. *)
  let h2 = Cache.Hierarchy.create ~l1 ~l2 ~memory_latency:100 () in
  ignore (Cache.Hierarchy.access h2 ~addr:a ~write:true ~tainted:false);
  ignore (Cache.Hierarchy.access h2 ~addr:b ~write:false ~tainted:false);
  ignore (Cache.Hierarchy.access h2 ~addr:a ~write:false ~tainted:false);
  Alcotest.(check bool) "clean refill stays clean" false
    (Cache.line_tainted (Cache.Hierarchy.l1 h2) ~addr:a)

(* --- Properties --- *)

let addr_gen = QCheck2.Gen.(int_range base (base + 60000))

let prop_byte_roundtrip =
  QCheck2.Test.make ~name:"byte write/read roundtrip"
    QCheck2.Gen.(triple addr_gen (int_bound 255) bool)
    (fun (addr, v, taint) ->
      let m = fresh () in
      Memory.store_byte m addr v ~taint;
      Memory.load_byte m addr = (v, taint))

let prop_word_roundtrip =
  QCheck2.Test.make ~name:"word write/read roundtrip at any offset"
    QCheck2.Gen.(triple addr_gen (int_bound 0xFFFFFFFF) (int_bound 15))
    (fun (addr, v, mask) ->
      let m = fresh () in
      let w = Tword.make ~v ~m:mask in
      Memory.store_word m addr w;
      Tword.equal (Memory.load_word m addr) w)

let prop_neighbours_untouched =
  QCheck2.Test.make ~name:"word store leaves neighbours untouched"
    QCheck2.Gen.(pair (int_range (base + 8) (base + 50000)) (int_bound 0xFFFFFFFF))
    (fun (addr, v) ->
      let m = fresh () in
      Memory.store_byte m (addr - 1) 0x5A ~taint:true;
      Memory.store_byte m (addr + 4) 0xA5 ~taint:false;
      Memory.store_word m addr (Tword.tainted v);
      Memory.load_byte m (addr - 1) = (0x5A, true) && Memory.load_byte m (addr + 4) = (0xA5, false))

(* Seeded sweep of the page-straddling slow path: every word/half
   store whose bytes span two pages must round-trip value and taint
   exactly and leave the neighbouring bytes alone.  A fixed seed keeps
   failures reproducible. *)
let test_cross_page_sweep () =
  let rng = Random.State.make [| 0x9E3779B9 |] in
  let m = fresh () in
  let rand32 () =
    (Random.State.bits rng lor (Random.State.bits rng lsl 30)) land 0xFFFFFFFF
  in
  for _ = 1 to 2_000 do
    (* A boundary inside the mapped 16-page window, approached so the
       access straddles it. *)
    let boundary = base + ((1 + Random.State.int rng 14) * Layout.page_bytes) in
    let sentinel_lo = Random.State.int rng 256 and sentinel_hi = Random.State.int rng 256 in
    if Random.State.bool rng then begin
      let addr = boundary - (1 + Random.State.int rng 2) in
      Memory.store_byte m (addr - 1) sentinel_lo ~taint:false;
      Memory.store_byte m (addr + 4) sentinel_hi ~taint:true;
      let w = Tword.make ~v:(rand32 ()) ~m:(Random.State.int rng 16) in
      Memory.store_word m addr w;
      if not (Tword.equal w (Memory.load_word m addr)) then
        Alcotest.failf "word roundtrip at %#x: got %s want %s" addr
          (Format.asprintf "%a" Tword.pp (Memory.load_word m addr))
          (Format.asprintf "%a" Tword.pp w);
      Alcotest.(check (pair int bool)) "low neighbour" (sentinel_lo, false)
        (Memory.load_byte m (addr - 1));
      Alcotest.(check (pair int bool)) "high neighbour" (sentinel_hi, true)
        (Memory.load_byte m (addr + 4))
    end
    else begin
      let addr = boundary - 1 in
      Memory.store_byte m (addr - 1) sentinel_lo ~taint:true;
      Memory.store_byte m (addr + 2) sentinel_hi ~taint:false;
      let v = Random.State.int rng 0x10000 and mask = Random.State.int rng 4 in
      Memory.store_half m addr v ~m:mask;
      let v', m' = Memory.load_half m addr in
      Alcotest.(check (pair int int)) "half roundtrip" (v, mask) (v', m');
      Alcotest.(check (pair int bool)) "low neighbour" (sentinel_lo, true)
        (Memory.load_byte m (addr - 1));
      Alcotest.(check (pair int bool)) "high neighbour" (sentinel_hi, false)
        (Memory.load_byte m (addr + 2))
    end
  done

(* --- fault-injection entry points keep the store coherent --- *)

let test_injection_invariants () =
  let m = fresh () in
  Tagged_store.debug_asserts := true;
  Memory.check_invariants m;
  Memory.store_word m base (Tword.make ~v:0xDEADBEEF ~m:0b1111);
  Memory.taint_range m (base + 64) 32;
  Memory.check_invariants m;
  let before = Memory.tainted_bytes m in
  (* a data flip never moves the taint plane or the live counter *)
  Memory.inject_flip_data m base ~bit:5;
  Memory.check_invariants m;
  Alcotest.(check int) "flip leaves taint counter" before (Memory.tainted_bytes m);
  Alcotest.(check int) "flip flipped the byte" (0xEF lxor 0x20)
    (fst (Memory.load_byte m base));
  (* range injections adjust the counter exactly, idempotently *)
  Memory.inject_set_taint_range m (base + 64) 64 ~tainted:true;
  Memory.check_invariants m;
  Alcotest.(check int) "range taint counted once" (before + 32) (Memory.tainted_bytes m);
  Memory.inject_set_taint_range m (base + 64) 64 ~tainted:false;
  Memory.check_invariants m;
  Alcotest.(check int) "range untainted" (before - 32) (Memory.tainted_bytes m);
  (* total wipe zeroes the counter whatever was tainted *)
  Memory.inject_wipe_taint m;
  Memory.check_invariants m;
  Alcotest.(check int) "wipe zeroes the counter" 0 (Memory.tainted_bytes m);
  Alcotest.(check int) "wipe leaves the data plane" (0xEF lxor 0x20)
    (fst (Memory.load_byte m base));
  (* injections into unmapped space fault like guest accesses *)
  (match Memory.inject_flip_data m 0x4 ~bit:0 with
   | () -> Alcotest.fail "unmapped injection must fault"
   | exception Memory.Fault _ -> ());
  Tagged_store.debug_asserts := false

let () =
  Alcotest.run "mem"
    [ ( "memory",
        [ Alcotest.test_case "byte roundtrip" `Quick test_byte_roundtrip;
          Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
          Alcotest.test_case "cross-page word" `Quick test_cross_page_word;
          Alcotest.test_case "unaligned word" `Quick test_unaligned_word;
          Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
          Alcotest.test_case "bulk + cstring" `Quick test_bulk_and_cstring;
          Alcotest.test_case "half word" `Quick test_half;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "stats width-independent" `Quick test_stats_width_independent;
          Alcotest.test_case "tainted_in_range faults on unmapped" `Quick
            test_tainted_in_range_unmapped;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "injection invariants" `Quick test_injection_invariants ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss" `Quick test_cache_basics;
          Alcotest.test_case "taint summary" `Quick test_cache_taint_summary;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
          Alcotest.test_case "hierarchy latency" `Quick test_hierarchy_latency;
          Alcotest.test_case "L2 taint inherited on L1 refill" `Quick
            test_l2_taint_inherited_on_refill ] );
      ( "properties",
        Alcotest.test_case "seeded cross-page word/half sweep" `Quick test_cross_page_sweep
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_byte_roundtrip; prop_word_roundtrip; prop_neighbours_untouched ] ) ]
