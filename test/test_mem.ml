(* Taint-extended memory and cache model tests. *)

open Ptaint_mem
open Ptaint_taint

let base = Layout.data_base

let fresh ?(bytes = 64 * 1024) () =
  let m = Memory.create () in
  Memory.map_range m ~lo:base ~bytes;
  m

let test_byte_roundtrip () =
  let m = fresh () in
  Memory.store_byte m base 0xAB ~taint:true;
  let v, t = Memory.load_byte m base in
  Alcotest.(check int) "value" 0xAB v;
  Alcotest.(check bool) "taint" true t;
  Memory.store_byte m base 0xCD ~taint:false;
  let v, t = Memory.load_byte m base in
  Alcotest.(check int) "overwritten" 0xCD v;
  Alcotest.(check bool) "untainted now" false t

let test_word_roundtrip () =
  let m = fresh () in
  let w = Tword.make ~v:0x12345678 ~m:0b0101 in
  Memory.store_word m (base + 8) w;
  Alcotest.(check bool) "roundtrip" true (Tword.equal w (Memory.load_word m (base + 8)));
  (* Little-endian byte order *)
  Alcotest.(check int) "lsb" 0x78 (fst (Memory.load_byte m (base + 8)));
  Alcotest.(check int) "msb" 0x12 (fst (Memory.load_byte m (base + 11)));
  Alcotest.(check bool) "byte0 tainted" true (snd (Memory.load_byte m (base + 8)));
  Alcotest.(check bool) "byte1 clean" false (snd (Memory.load_byte m (base + 9)))

let test_cross_page_word () =
  let m = fresh () in
  let addr = base + Layout.page_bytes - 2 in
  let w = Tword.make ~v:0xAABBCCDD ~m:0b1001 in
  Memory.store_word m addr w;
  Alcotest.(check bool) "cross-page roundtrip" true (Tword.equal w (Memory.load_word m addr))

let test_unaligned_word () =
  let m = fresh () in
  let w = Tword.tainted 0xDEADBEEF in
  Memory.store_word m (base + 1) w;
  Alcotest.(check bool) "unaligned roundtrip" true (Tword.equal w (Memory.load_word m (base + 1)))

let test_unmapped_fault () =
  let m = fresh () in
  (try
     ignore (Memory.load_byte m 0x61616161);
     Alcotest.fail "expected fault"
   with Memory.Fault { addr; access } ->
     Alcotest.(check int) "addr" 0x61616161 addr;
     Alcotest.(check bool) "kind" true (access = Memory.Load));
  try
    Memory.store_byte m 0x200 0 ~taint:false;
    Alcotest.fail "expected store fault"
  with Memory.Fault { access; _ } -> Alcotest.(check bool) "store" true (access = Memory.Store)

let test_bulk_and_cstring () =
  let m = fresh () in
  Memory.write_string m base "hello\000world" ~taint:true;
  Alcotest.(check string) "read_string" "hello" (Memory.read_string m base 5);
  Alcotest.(check string) "read_cstring stops at NUL" "hello" (Memory.read_cstring m base);
  Alcotest.(check int) "tainted count" 11 (Memory.tainted_in_range m base 11);
  Memory.untaint_range m base 5;
  Alcotest.(check int) "after untaint" 6 (Memory.tainted_in_range m base 11);
  Memory.taint_range m base 2;
  Alcotest.(check int) "after retaint" 8 (Memory.tainted_in_range m base 11)

let test_half () =
  let m = fresh () in
  Memory.store_half m base 0xBEEF ~m:0b10;
  let v, mask = Memory.load_half m base in
  Alcotest.(check int) "half value" 0xBEEF v;
  Alcotest.(check int) "half mask" 0b10 mask

let test_stats () =
  let m = fresh () in
  let s = Memory.stats m in
  let loads0 = s.Memory.loads in
  Memory.store_byte m base 1 ~taint:true;
  ignore (Memory.load_byte m base);
  Alcotest.(check int) "loads counted" (loads0 + 1) s.Memory.loads;
  Alcotest.(check int) "tainted stores" 1 s.Memory.tainted_stores;
  Alcotest.(check int) "tainted loads" 1 s.Memory.tainted_loads

(* --- Cache model --- *)

let test_cache_basics () =
  let c = Cache.create { Cache.sets = 4; ways = 1; line_bytes = 16; hit_latency = 1 } in
  Alcotest.(check bool) "first is miss" true (Cache.access c ~addr:0x1000 ~write:false ~tainted:false = Cache.Miss);
  Alcotest.(check bool) "second is hit" true (Cache.access c ~addr:0x1008 ~write:false ~tainted:false = Cache.Hit);
  (* Same set, different tag evicts in a direct-mapped cache. *)
  Alcotest.(check bool) "conflict miss" true (Cache.access c ~addr:0x1040 ~write:false ~tainted:false = Cache.Miss);
  Alcotest.(check bool) "evicted" true (Cache.access c ~addr:0x1000 ~write:false ~tainted:false = Cache.Miss);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 3 st.Cache.misses

let test_cache_taint_summary () =
  let c = Cache.create Cache.l1_config in
  ignore (Cache.access c ~addr:0x2000 ~write:true ~tainted:true);
  Alcotest.(check bool) "line tainted" true (Cache.line_tainted c ~addr:0x2004);
  ignore (Cache.access c ~addr:0x3000 ~write:false ~tainted:false);
  Alcotest.(check bool) "other line clean" false (Cache.line_tainted c ~addr:0x3000)

let test_cache_lru () =
  let c = Cache.create { Cache.sets = 1; ways = 2; line_bytes = 16; hit_latency = 1 } in
  ignore (Cache.access c ~addr:0x000 ~write:false ~tainted:false);
  ignore (Cache.access c ~addr:0x010 ~write:false ~tainted:false);
  ignore (Cache.access c ~addr:0x000 ~write:false ~tainted:false);
  (* 0x010 is now LRU; filling a third line evicts it. *)
  ignore (Cache.access c ~addr:0x020 ~write:false ~tainted:false);
  Alcotest.(check bool) "0x000 still resident" true (Cache.access c ~addr:0x000 ~write:false ~tainted:false = Cache.Hit);
  Alcotest.(check bool) "0x010 evicted" true (Cache.access c ~addr:0x010 ~write:false ~tainted:false = Cache.Miss)

let test_hierarchy_latency () =
  let h = Cache.Hierarchy.create ~memory_latency:100 () in
  let cold = Cache.Hierarchy.access h ~addr:0x4000 ~write:false ~tainted:false in
  let warm = Cache.Hierarchy.access h ~addr:0x4000 ~write:false ~tainted:false in
  Alcotest.(check int) "cold = l1+l2+mem" (1 + 8 + 100) cold;
  Alcotest.(check int) "warm = l1" 1 warm

(* --- Properties --- *)

let addr_gen = QCheck2.Gen.(int_range base (base + 60000))

let prop_byte_roundtrip =
  QCheck2.Test.make ~name:"byte write/read roundtrip"
    QCheck2.Gen.(triple addr_gen (int_bound 255) bool)
    (fun (addr, v, taint) ->
      let m = fresh () in
      Memory.store_byte m addr v ~taint;
      Memory.load_byte m addr = (v, taint))

let prop_word_roundtrip =
  QCheck2.Test.make ~name:"word write/read roundtrip at any offset"
    QCheck2.Gen.(triple addr_gen (int_bound 0xFFFFFFFF) (int_bound 15))
    (fun (addr, v, mask) ->
      let m = fresh () in
      let w = Tword.make ~v ~m:mask in
      Memory.store_word m addr w;
      Tword.equal (Memory.load_word m addr) w)

let prop_neighbours_untouched =
  QCheck2.Test.make ~name:"word store leaves neighbours untouched"
    QCheck2.Gen.(pair (int_range (base + 8) (base + 50000)) (int_bound 0xFFFFFFFF))
    (fun (addr, v) ->
      let m = fresh () in
      Memory.store_byte m (addr - 1) 0x5A ~taint:true;
      Memory.store_byte m (addr + 4) 0xA5 ~taint:false;
      Memory.store_word m addr (Tword.tainted v);
      Memory.load_byte m (addr - 1) = (0x5A, true) && Memory.load_byte m (addr + 4) = (0xA5, false))

let () =
  Alcotest.run "mem"
    [ ( "memory",
        [ Alcotest.test_case "byte roundtrip" `Quick test_byte_roundtrip;
          Alcotest.test_case "word roundtrip" `Quick test_word_roundtrip;
          Alcotest.test_case "cross-page word" `Quick test_cross_page_word;
          Alcotest.test_case "unaligned word" `Quick test_unaligned_word;
          Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
          Alcotest.test_case "bulk + cstring" `Quick test_bulk_and_cstring;
          Alcotest.test_case "half word" `Quick test_half;
          Alcotest.test_case "stats" `Quick test_stats ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss" `Quick test_cache_basics;
          Alcotest.test_case "taint summary" `Quick test_cache_taint_summary;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
          Alcotest.test_case "hierarchy latency" `Quick test_hierarchy_latency ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_byte_roundtrip; prop_word_roundtrip; prop_neighbours_untouched ] ) ]
