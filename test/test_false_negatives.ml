(* Table 4: the documented false-negative scenarios — attacks that
   succeed WITHOUT raising an alert — and the contrast cases where
   detection resumes. *)

open Ptaint_attacks

let run ?(policy = Ptaint_cpu.Policy.default) ?(stdin = "") ?(sessions = []) source =
  let program = Ptaint_runtime.Runtime.compile source in
  let config = Ptaint_sim.Sim.Config.(default |> with_policy policy |> with_stdin stdin |> with_sessions sessions) in
  Ptaint_sim.Sim.run ~config program

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let expect_exit name (r : Ptaint_sim.Sim.result) =
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited _ -> ()
  | o -> Alcotest.failf "%s: expected clean-looking exit, got %a" name Ptaint_sim.Sim.pp_outcome o

(* (A) integer overflow *)

let test_integer_overflow_fn () =
  let r =
    run Ptaint_apps.Synthetic.fn_integer_overflow
      ~stdin:(Payload.le_word (Ptaint_isa.Word.of_signed (-1)))
  in
  expect_exit "A" r;
  Alcotest.(check bool) "index accepted" true (contains r.Ptaint_sim.Sim.stdout "index stored");
  Alcotest.(check bool) "admin corrupted, undetected" true
    (contains r.Ptaint_sim.Sim.stdout "ADMIN MODE ENABLED")

let test_integer_overflow_benign () =
  let r = run Ptaint_apps.Synthetic.fn_integer_overflow ~stdin:(Payload.le_word 5) in
  expect_exit "A benign" r;
  Alcotest.(check bool) "no admin" false (contains r.Ptaint_sim.Sim.stdout "ADMIN MODE");
  let r = run Ptaint_apps.Synthetic.fn_integer_overflow ~stdin:(Payload.le_word 200) in
  Alcotest.(check bool) "large index rejected" true
    (contains r.Ptaint_sim.Sim.stdout "index rejected")

let test_integer_overflow_detected_without_rule4 () =
  (* The FN exists *because* of the compare-untaint rule: disabling it
     turns the same attack into a detection. *)
  let policy = { Ptaint_cpu.Policy.default with Ptaint_cpu.Policy.compare_untaints = false } in
  let r =
    run ~policy Ptaint_apps.Synthetic.fn_integer_overflow
      ~stdin:(Payload.le_word (Ptaint_isa.Word.of_signed (-1)))
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert _ -> ()
  | o -> Alcotest.failf "expected alert without rule 4, got %a" Ptaint_sim.Sim.pp_outcome o

(* (B) auth flag *)

let test_auth_flag_fn () =
  let r = run Ptaint_apps.Synthetic.fn_auth_flag ~stdin:(Payload.fill 16 ^ "\x01\n") in
  expect_exit "B" r;
  Alcotest.(check bool) "access granted without password" true
    (contains r.Ptaint_sim.Sim.stdout "ACCESS GRANTED")

let test_auth_flag_guarded_detects () =
  (* the section 5.3 annotation extension converts the FN into a
     detection *)
  let r = run Ptaint_apps.Synthetic.fn_auth_flag_guarded ~stdin:(Payload.fill 16 ^ "\x01\n") in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a ->
    Alcotest.(check bool) "guard detector" true
      (a.Ptaint_cpu.Machine.kind = Ptaint_cpu.Machine.Guarded_store)
  | o -> Alcotest.failf "expected guarded-store alert, got %a" Ptaint_sim.Sim.pp_outcome o

let test_auth_flag_guarded_benign () =
  let r = run Ptaint_apps.Synthetic.fn_auth_flag_guarded ~stdin:"secret\n" in
  expect_exit "B guarded benign" r;
  Alcotest.(check bool) "honest login still works" true
    (contains r.Ptaint_sim.Sim.stdout "ACCESS GRANTED");
  let r = run Ptaint_apps.Synthetic.fn_auth_flag_guarded ~stdin:"nope\n" in
  Alcotest.(check bool) "wrong password denied" true
    (contains r.Ptaint_sim.Sim.stdout "ACCESS DENIED")

let test_auth_flag_normal () =
  let r = run Ptaint_apps.Synthetic.fn_auth_flag ~stdin:"secret\n" in
  Alcotest.(check bool) "correct password works" true
    (contains r.Ptaint_sim.Sim.stdout "ACCESS GRANTED");
  let r = run Ptaint_apps.Synthetic.fn_auth_flag ~stdin:"wrong\n" in
  Alcotest.(check bool) "wrong password denied" true
    (contains r.Ptaint_sim.Sim.stdout "ACCESS DENIED")

(* (C) info leak *)

let test_info_leak_fn () =
  let r = run Ptaint_apps.Synthetic.fn_info_leak ~sessions:[ [ "%x%x%x%x" ] ] in
  expect_exit "C" r;
  let leaked = List.exists (fun m -> contains m "12345678") r.Ptaint_sim.Sim.net_sent in
  Alcotest.(check bool) "secret leaked without alert" true leaked

let test_info_leak_write_detected () =
  let r = run Ptaint_apps.Synthetic.fn_info_leak ~sessions:[ [ "abcd%x%x%x%n" ] ] in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a ->
    Alcotest.(check bool) "store detector" true
      (a.Ptaint_cpu.Machine.kind = Ptaint_cpu.Machine.Store_address)
  | o -> Alcotest.failf "expected alert on %%n, got %a" Ptaint_sim.Sim.pp_outcome o

let test_info_leak_benign () =
  let r = run Ptaint_apps.Synthetic.fn_info_leak ~sessions:[ [ "just a greeting" ] ] in
  expect_exit "C benign" r

let () =
  Alcotest.run "false negatives (Table 4)"
    [ ( "A: integer overflow",
        [ Alcotest.test_case "attack missed (FN)" `Quick test_integer_overflow_fn;
          Alcotest.test_case "benign indexing" `Quick test_integer_overflow_benign;
          Alcotest.test_case "detected without rule 4" `Quick
            test_integer_overflow_detected_without_rule4 ] );
      ( "B: auth flag",
        [ Alcotest.test_case "attack missed (FN)" `Quick test_auth_flag_fn;
          Alcotest.test_case "normal auth" `Quick test_auth_flag_normal;
          Alcotest.test_case "5.3 guard converts FN to detection" `Quick
            test_auth_flag_guarded_detects;
          Alcotest.test_case "guard silent on honest login" `Quick
            test_auth_flag_guarded_benign ] );
      ( "C: info leak",
        [ Alcotest.test_case "leak missed (FN)" `Quick test_info_leak_fn;
          Alcotest.test_case "%n write detected" `Quick test_info_leak_write_detected;
          Alcotest.test_case "benign client" `Quick test_info_leak_benign ] ) ]
