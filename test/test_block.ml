(* Differential testing of the block-threaded bulk engine.

   [Sim.finish] routes untraced sessions through [Machine.run] — the
   pre-decoded basic-block interpreter with its clean-taint fast path
   — while [Sim.finish_per_step] drives the same session strictly one
   [Machine.step] at a time.  The two engines must be observationally
   identical: same outcome, same instruction count, same register
   file (values *and* taint), same memory taint, same access
   statistics.  This suite checks that on random compiled programs,
   on every attack scenario in the catalogue under every coverage
   policy, and on a handwritten guest that crosses
   clean -> tainted -> clean so both sides of the fast-path switch
   execute. *)

open Ptaint_taint
module Sim = Ptaint_sim.Sim
module Machine = Ptaint_cpu.Machine
module Regfile = Ptaint_cpu.Regfile
module Memory = Ptaint_mem.Memory
module Scenario = Ptaint_attacks.Scenario
module Catalog = Ptaint_attacks.Catalog

(* --- result comparison ---------------------------------------------- *)

let outcome_str o = Format.asprintf "%a" Sim.pp_outcome o

let reg_bits m =
  List.init Regfile.slots (fun i -> Tword.to_bits (Regfile.slot m.Machine.regs i))

let check_agree ctx (bulk : Sim.result) (ref_ : Sim.result) =
  let chk name pp a b =
    if a <> b then
      Alcotest.failf "%s: %s differs — bulk %s, per-step %s" ctx name (pp a) (pp b)
  in
  let si = string_of_int in
  chk "outcome" Fun.id (outcome_str bulk.outcome) (outcome_str ref_.outcome);
  chk "instructions" si bulk.instructions ref_.instructions;
  chk "stdout" (Printf.sprintf "%S") bulk.stdout ref_.stdout;
  chk "net_sent" (String.concat "|") bulk.net_sent ref_.net_sent;
  chk "execs" (String.concat "|") bulk.execs ref_.execs;
  chk "final_uid" si bulk.final_uid ref_.final_uid;
  chk "input_bytes" si bulk.input_bytes ref_.input_bytes;
  chk "syscalls" si bulk.syscalls ref_.syscalls;
  let mb = bulk.machine and mr = ref_.machine in
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "%s: register %s differs — bulk %x, per-step %x" ctx
          (Regfile.slot_name i) a b)
    (List.combine (reg_bits mb) (reg_bits mr));
  chk "machine icount" si mb.Machine.icount mr.Machine.icount;
  chk "tainted registers" si
    (Regfile.tainted_count mb.Machine.regs) (Regfile.tainted_count mr.Machine.regs);
  chk "tainted bytes" si
    (Memory.tainted_bytes mb.Machine.mem) (Memory.tainted_bytes mr.Machine.mem);
  let sb = Memory.stats mb.Machine.mem and sr = Memory.stats mr.Machine.mem in
  chk "loads" si sb.Memory.loads sr.Memory.loads;
  chk "stores" si sb.Memory.stores sr.Memory.stores;
  chk "tainted loads" si sb.Memory.tainted_loads sr.Memory.tainted_loads;
  chk "tainted stores" si sb.Memory.tainted_stores sr.Memory.tainted_stores;
  chk "mapped bytes" si sb.Memory.mapped_bytes sr.Memory.mapped_bytes

(* Run one program under one config through both engines.  Also
   asserts the routing itself: the bulk run must actually have
   dispatched blocks, and the reference run must not have. *)
let differential ctx config program =
  let bulk = Sim.finish (Sim.boot ~config program) in
  let ref_ = Sim.finish_per_step (Sim.boot ~config program) in
  if bulk.instructions > 0 && bulk.machine.Machine.blocks_run = 0 then
    Alcotest.failf "%s: finish did not route through the block engine" ctx;
  if ref_.machine.Machine.blocks_run <> 0 then
    Alcotest.failf "%s: finish_per_step dispatched blocks" ctx;
  check_agree ctx bulk ref_;
  bulk

(* --- random compiled programs --------------------------------------- *)

(* Random Mini-C expression trees (same shape as the compiler fuzz
   suite, minus the OCaml reference evaluator: here the per-step
   engine *is* the reference).  Division and shifts keep constant
   right-hand sides so neither engine hits undefined guest behaviour;
   control flow comes from ?:/&&/|| which compile to branches, so the
   block engine sees real multi-block programs, not one straight
   line. *)
type expr =
  | Num of int
  | Var of int (* 0..2 -> a, b, c *)
  | Bin of string * expr * expr
  | Un of string * expr
  | Cond of expr * expr * expr

let rec render = function
  | Num n -> string_of_int n
  | Var i -> String.make 1 (Char.chr (Char.code 'a' + i))
  | Un (op, e) -> Printf.sprintf "(%s %s)" op (render e)
  | Cond (c, t, f) -> Printf.sprintf "(%s ? %s : %s)" (render c) (render t) (render f)
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)

let expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof [ (int_range (-100) 100 >|= fun n -> Num n); (int_range 0 2 >|= fun i -> Var i) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            ( 5,
              let* op =
                oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "<"; ">"; "<="; ">="; "=="; "!=" ]
              in
              let* a = self (depth - 1) in
              let* b = self (depth - 1) in
              return (Bin (op, a, b)) );
            ( 1,
              let* op = oneofl [ "/"; "%" ] in
              let* a = self (depth - 1) in
              let* d = oneofl [ -7; -3; 2; 3; 5; 17 ] in
              return (Bin (op, a, Num d)) );
            ( 1,
              let* op = oneofl [ "<<"; ">>" ] in
              let* a = self (depth - 1) in
              let* s = int_range 0 31 in
              return (Bin (op, a, Num s)) );
            ( 1,
              let* op = oneofl [ "&&"; "||" ] in
              let* a = self (depth - 1) in
              let* b = self (depth - 1) in
              return (Bin (op, a, b)) );
            (1, self (depth - 1) >|= fun e -> Un ("-", e));
            (1, self (depth - 1) >|= fun e -> Un ("~", e));
            (1, self (depth - 1) >|= fun e -> Un ("!", e));
            ( 1,
              let* c = self (depth - 1) in
              let* t = self (depth - 1) in
              let* f = self (depth - 1) in
              return (Cond (c, t, f)) ) ])
    4

let prop_random_programs =
  QCheck2.Test.make ~count:60 ~name:"bulk engine = per-step engine on random programs"
    ~print:(fun (e, va, vb) -> Printf.sprintf "a=%d b=%d expr=%s" va vb (render e))
    QCheck2.Gen.(triple expr_gen (int_range (-50) 50) (int_range (-50) 50))
    (fun (e, va, vb) ->
      let source =
        Printf.sprintf
          "int main(void) { int a = %d; int b = %d; int c = 13; printf(\"%%d\", %s); return 0; }"
          va vb (render e)
      in
      let program = Ptaint_runtime.Runtime.compile source in
      ignore (differential (render e) Sim.default_config program);
      true)

(* --- the attack catalogue, every scenario x case x policy ------------ *)

let test_catalog_differential () =
  List.iter
    (fun (s : Scenario.t) ->
      let program = s.build () in
      List.iter
        (fun (c : Scenario.case) ->
          List.iter
            (fun (pname, policy) ->
              let config = { (c.config program) with Sim.policy; obs = false } in
              let ctx = Printf.sprintf "%s/%s/%s" s.name c.Scenario.case_name pname in
              ignore (differential ctx config program))
            Scenario.coverage_policies)
        s.cases)
    Catalog.all

(* --- clean -> tainted -> clean -------------------------------------- *)

(* Starts with zero live taint (only stdin is a source, argv is not),
   spins a while on the clean fast path, reads four tainted bytes,
   works on them with the full handlers, then scrubs both the buffer
   and the registers and spins again — so one run exercises the clean
   path, the taint path, and both switch directions. *)
let clean_taint_clean_asm =
  {|
        .text
main:   li $t1, 200
warm:   addiu $t1, $t1, -1      # clean spin: no taint anywhere yet
        bne $t1, $zero, warm
        li $v0, 2               # sys_read
        li $a0, 0               # stdin
        la $a1, buf
        li $a2, 4
        syscall
        lw $t0, 0($a1)
        addu $t2, $t0, $t0      # propagate taint through the ALU
        sw $t2, 4($a1)
        sw $zero, 0($a1)        # scrub memory taint...
        sw $zero, 4($a1)
        li $t0, 0               # ...and register taint
        li $t2, 0
        li $t1, 200
cool:   addiu $t1, $t1, -1      # clean again
        bne $t1, $zero, cool
        li $v0, 1               # sys_exit
        li $a0, 0
        syscall
        .data
buf:    .space 8
|}

let test_clean_taint_clean () =
  let program =
    match Ptaint_asm.Assembler.assemble clean_taint_clean_asm with
    | Ok p -> p
    | Error e -> Alcotest.failf "assembly failed: %a" Ptaint_asm.Assembler.pp_error e
  in
  let config =
    Sim.Config.(default |> with_sources { Ptaint_os.Sources.none with stdin = true } |> with_stdin "ABCD")
  in
  let bulk = differential "clean-taint-clean" config program in
  let m = bulk.machine in
  (match bulk.outcome with
   | Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Sim.pp_outcome o);
  Alcotest.(check bool) "some blocks ran clean" true (m.Machine.clean_blocks > 0);
  Alcotest.(check bool) "some blocks ran the full handlers" true
    (m.Machine.blocks_run > m.Machine.clean_blocks);
  Alcotest.(check int) "memory scrubbed" 0 (Memory.tainted_bytes m.Machine.mem);
  Alcotest.(check int) "registers scrubbed" 0 (Regfile.tainted_count m.Machine.regs)

(* --- superblock chains ---------------------------------------------- *)

(* A nested direct-branch loop: the inner body self-chains through its
   taken slot, the outer tail chains back across two blocks.  Hot
   enough (5000 inner iterations) that every loop block is promoted
   and almost every crossing stays inside a compiled chain — the
   differential proves the chained execution is still bit-exact, the
   counter checks prove the chains actually carried the run. *)
let chain_loop_asm =
  {|
        .text
main:   li $t0, 100
outer:  li $t1, 50
inner:  addiu $t1, $t1, -1
        addu $t2, $t2, $t0
        bne $t1, $zero, inner
        addiu $t0, $t0, -1
        bgtz $t0, outer
        li $v0, 1
        li $a0, 0
        syscall
|}

let test_superblock_chains () =
  let program =
    match Ptaint_asm.Assembler.assemble chain_loop_asm with
    | Ok p -> p
    | Error e -> Alcotest.failf "assembly failed: %a" Ptaint_asm.Assembler.pp_error e
  in
  let bulk = differential "superblock-chains" Sim.default_config program in
  let m = bulk.machine in
  (match bulk.outcome with
   | Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Sim.pp_outcome o);
  Alcotest.(check bool) "blocks were promoted" true (m.Machine.sb_promoted > 0);
  Alcotest.(check bool) "chains linked up" true (m.Machine.chain_hits > 1000)

(* Taint flips inside a chain: each loop iteration reads four tainted
   bytes (full handlers), scrubs every trace of them, then spins a
   clean inner loop — so once the loop is promoted, a single chain run
   crosses from the full variant into the clean variant, which is
   exactly the per-entry re-selection (deopt) path. *)
let flip_loop_asm =
  {|
        .text
main:   li $t3, 20
loop:   li $v0, 2               # sys_read: 4 tainted bytes -> buf
        li $a0, 0
        la $a1, buf
        li $a2, 4
        syscall
        lw $t0, 0($a1)
        addu $t2, $t0, $t0      # propagate under the full handlers
        sw $zero, 0($a1)        # scrub the memory taint...
        li $t0, 0               # ...and both registers
        li $t2, 0
        li $t4, 30
spin:   addiu $t4, $t4, -1      # clean spin, mid-chain
        bne $t4, $zero, spin
        addiu $t3, $t3, -1
        bgtz $t3, loop
        li $v0, 1
        li $a0, 0
        syscall
        .data
buf:    .space 8
|}

let test_taint_flip_mid_chain () =
  let program =
    match Ptaint_asm.Assembler.assemble flip_loop_asm with
    | Ok p -> p
    | Error e -> Alcotest.failf "assembly failed: %a" Ptaint_asm.Assembler.pp_error e
  in
  let config =
    Sim.Config.(
      default
      |> with_sources { Ptaint_os.Sources.none with stdin = true }
      |> with_stdin (String.init 80 (fun i -> Char.chr (65 + (i mod 26)))))
  in
  let bulk = differential "taint-flip-mid-chain" config program in
  let m = bulk.machine in
  (match bulk.outcome with
   | Sim.Exited 0 -> ()
   | o -> Alcotest.failf "outcome: %a" Sim.pp_outcome o);
  Alcotest.(check bool) "blocks were promoted" true (m.Machine.sb_promoted > 0);
  Alcotest.(check bool) "chains linked up" true (m.Machine.chain_hits > 0);
  Alcotest.(check bool) "variant flips were observed mid-chain" true
    (m.Machine.sb_deopts > 0);
  Alcotest.(check bool) "some blocks ran clean" true (m.Machine.clean_blocks > 0);
  Alcotest.(check bool) "some blocks ran the full handlers" true
    (m.Machine.blocks_run > m.Machine.clean_blocks);
  Alcotest.(check int) "memory scrubbed" 0 (Memory.tainted_bytes m.Machine.mem);
  Alcotest.(check int) "registers scrubbed" 0 (Regfile.tainted_count m.Machine.regs)

(* --- batch runner --------------------------------------------------- *)

(* [run_many] feeds every job through [finish]; a two-domain batch
   must therefore match a sequential per-step run job for job. *)
let test_run_many_differential () =
  let stack = Catalog.exp1_stack_smash in
  let format = Catalog.exp3_format in
  let jobs =
    List.concat_map
      (fun (s : Scenario.t) ->
        let p = s.build () in
        List.map (fun (c : Scenario.case) -> (c.Scenario.config p, p)) s.cases)
      [ stack; format ]
  in
  let batch = Sim.run_many ~domains:2 jobs in
  let seq = List.map (fun (c, p) -> Sim.finish_per_step (Sim.boot ~config:c p)) jobs in
  List.iteri
    (fun i (b, r) -> check_agree (Printf.sprintf "run_many job %d" i) b r)
    (List.combine batch seq)

let () =
  Alcotest.run "block engine"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest prop_random_programs;
          Alcotest.test_case "attack catalogue, both engines" `Quick test_catalog_differential;
          Alcotest.test_case "clean -> tainted -> clean" `Quick test_clean_taint_clean;
          Alcotest.test_case "superblock chains, both engines" `Quick test_superblock_chains;
          Alcotest.test_case "taint flip mid-chain" `Quick test_taint_flip_mid_chain;
          Alcotest.test_case "run_many matches per-step" `Quick test_run_many_differential ] ) ]
