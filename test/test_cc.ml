(* Mini-C compiler end-to-end tests: compile, run on the simulated
   machine, check behaviour. *)

let run ?(config = Ptaint_sim.Sim.default_config) src =
  Ptaint_sim.Sim.run (Ptaint_runtime.Runtime.compile src)
  |> fun r ->
  ignore config;
  r

let run_cfg config src = Ptaint_sim.Sim.run ~config (Ptaint_runtime.Runtime.compile src)

let expect_stdout ?config name expected src =
  let r = match config with Some c -> run_cfg c src | None -> run src in
  (match r.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Exited _ -> ()
   | o -> Alcotest.failf "%s: unexpected outcome %a" name Ptaint_sim.Sim.pp_outcome o);
  Alcotest.(check string) name expected r.Ptaint_sim.Sim.stdout

let expect_exit name code src =
  let r = run src in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited c -> Alcotest.(check int) name code c
  | o -> Alcotest.failf "%s: unexpected outcome %a" name Ptaint_sim.Sim.pp_outcome o

(* --- basics --- *)

let test_return_code () = expect_exit "return 42" 42 "int main(void) { return 42; }"

let test_arith () =
  expect_exit "arith" 15
    {| int main(void) { int a = 2; int b = 3; return a * b + (100 - 85) / 5 * 3 + 10 % 4 - 2 * (b - a); } |}

let test_puts () = expect_stdout "puts" "hello\n" {| int main(void) { puts("hello"); return 0; } |}

let test_if_else () =
  expect_stdout "if" "big\n"
    {| int main(void) { int x = 10; if (x > 5) puts("big"); else puts("small"); return 0; } |}

let test_while_loop () =
  expect_exit "while sum" 55
    {| int main(void) { int i = 1; int s = 0; while (i <= 10) { s += i; i++; } return s; } |}

let test_for_loop () =
  expect_exit "for sum" 45
    {| int main(void) { int s = 0; int i; for (i = 0; i < 10; i++) s += i; return s; } |}

let test_do_while () =
  expect_exit "do-while" 5
    {| int main(void) { int i = 0; do { i++; } while (i < 5); return i; } |}

let test_break_continue () =
  expect_exit "break/continue" 12
    {| int main(void) {
         int s = 0;
         int i;
         for (i = 0; i < 100; i++) {
           if (i % 2) continue;
           if (i > 6) break;
           s += i;   /* 0+2+4+6 */
         }
         return s;
       } |}

let test_recursion () =
  expect_exit "fib" 55
    {| int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main(void) { return fib(10); } |}

let test_logical_ops () =
  expect_exit "logical" 1
    {| int side_effects = 0;
       int bump(void) { side_effects++; return 1; }
       int main(void) {
         int a = 0;
         if (a && bump()) return 9;          /* short circuit: no bump */
         if (!(a || bump())) return 8;       /* bump runs once */
         return side_effects;
       } |}

let test_ternary () =
  expect_exit "ternary" 7 {| int main(void) { int x = 3; return x > 2 ? 7 : 1; } |}

let test_unsigned_compare () =
  (* 0xFFFFFFFF unsigned is large, signed is -1. *)
  expect_exit "unsigned cmp" 3
    {| int main(void) {
         unsigned u = 0xFFFFFFFF;
         int s = -1;
         int r = 0;
         if (u > 100) r += 1;
         if (s < 100) r += 2;
         return r;
       } |}

let test_shifts_and_bits () =
  expect_exit "bits" 1
    {| int main(void) {
         int x = 0xF0;
         unsigned u = 0x80000000;
         if ((x >> 4) != 0xF) return 2;
         if ((x << 1) != 0x1E0) return 3;
         if ((u >> 31) != 1) return 4;       /* unsigned: logical shift */
         if (((0 - 16) >> 2) != (0 - 4)) return 5;  /* signed: arithmetic */
         if ((x & 0x30) != 0x30) return 6;
         if ((x | 0x0F) != 0xFF) return 7;
         if ((x ^ 0xFF) != 0x0F) return 8;
         if ((~0) != (0 - 1)) return 9;
         return 1;
       } |}

(* --- pointers, arrays, strings --- *)

let test_pointer_basics () =
  expect_exit "pointers" 30
    {| int main(void) {
         int x = 10;
         int *p = &x;
         *p = 20;
         int **pp = &p;
         **pp += 10;
         return x;
       } |}

let test_array_index () =
  expect_exit "array" 6
    {| int main(void) {
         int a[5];
         int i;
         for (i = 0; i < 5; i++) a[i] = i;
         return a[1] + a[2] + a[3];
       } |}

let test_pointer_arith () =
  expect_exit "ptr arith" 42
    {| int main(void) {
         int a[4] = {1, 41, 3, 4};
         int *p = a;
         p = p + 1;
         int *q = &a[3];
         if (q - p != 2) return 9;
         return *p + 1;
       } |}

let test_char_ops () =
  expect_stdout "chars" "BCD\n"
    {| int main(void) {
         char buf[8];
         int i;
         for (i = 0; i < 3; i++) buf[i] = 'A' + 1 + i;
         buf[3] = 0;
         puts(buf);
         return 0;
       } |}

let test_string_functions () =
  expect_exit "strings" 1
    {| int main(void) {
         char buf[32];
         strcpy(buf, "hello ");
         strcat(buf, "world");
         if (strlen(buf) != 11) return 2;
         if (strcmp(buf, "hello world") != 0) return 3;
         if (strncmp(buf, "hello x", 5) != 0) return 4;
         if (strchr(buf, 'w') != buf + 6) return 5;
         if (strstr(buf, "lo wo") != buf + 3) return 6;
         char copy[32];
         memcpy(copy, buf, 12);
         if (memcmp(copy, buf, 12) != 0) return 7;
         memset(copy, 'x', 3);
         if (copy[0] != 'x' || copy[2] != 'x' || copy[3] != 'l') return 8;
         return 1;
       } |}

let test_atoi () =
  expect_exit "atoi" 1
    {| int main(void) {
         if (atoi("123") != 123) return 2;
         if (atoi("-45") != -45) return 3;
         if (atoi("  78x") != 78) return 4;
         if (atoi("0") != 0) return 5;
         return 1;
       } |}

let test_global_data () =
  expect_exit "globals" 1
    {| int counter = 5;
       int table[4] = {10, 20, 30, 40};
       char greeting[8] = "hi";
       char *msg = "pointer";
       int main(void) {
         counter += table[2];
         if (counter != 35) return 2;
         if (greeting[0] != 'h' || greeting[2] != 0) return 3;
         if (strlen(msg) != 7) return 4;
         return 1;
       } |}

(* --- structs --- *)

let test_structs () =
  expect_exit "structs" 1
    {| struct point { int x; int y; };
       struct rect { struct point a; struct point b; char tag; };
       int area(struct rect *r) {
         return (r->b.x - r->a.x) * (r->b.y - r->a.y);
       }
       int main(void) {
         struct rect r;
         r.a.x = 1; r.a.y = 2;
         r.b.x = 5; r.b.y = 8;
         r.tag = 'R';
         if (sizeof(struct point) != 8) return 2;
         if (area(&r) != 24) return 3;
         struct point *p = &r.a;
         p->x += 100;
         if (r.a.x != 101) return 4;
         return 1;
       } |}

let test_struct_array () =
  expect_exit "struct array" 60
    {| struct item { int v; char name[4]; };
       struct item items[3];
       int main(void) {
         int i;
         for (i = 0; i < 3; i++) items[i].v = (i + 1) * 10;
         return items[0].v + items[1].v + items[2].v;
       } |}

(* --- function pointers --- *)

let test_function_pointers () =
  expect_exit "fn ptrs" 9
    {| int add(int a, int b) { return a + b; }
       int mul(int a, int b) { return a * b; }
       int apply(int (*f)(int, int), int x, int y) { return f(x, y); }
       int (*table[2])(int, int);
       int main(void) {
         int (*op)(int, int) = add;
         int r = op(2, 3);          /* 5 */
         op = mul;
         r = r + apply(op, 2, 2);   /* +4 */
         return r;
       } |}

(* --- varargs / printf --- *)

let test_printf_basic () =
  expect_stdout "printf" "n=42 u=3000000000 hex=2a c=Z s=str 100%\n"
    {| int main(void) {
         printf("n=%d u=%u hex=%x c=%c s=%s 100%%\n", 42, 3000000000, 42, 'Z', "str");
         return 0;
       } |}

let test_printf_width () =
  expect_stdout "printf width" "[   42][00042][2a      ]ok\n"
    {| int main(void) {
         char buf[64];
         sprintf(buf, "[%5d][%05d][%x      ]", 42, 42, 42);
         printf("%s", buf);
         puts("ok");
         return 0;
       } |}

let test_printf_negative () =
  expect_stdout "printf negative" "-7 -2147483648\n"
    {| int main(void) { printf("%d %d\n", -7, 0x80000000); return 0; } |}

let test_percent_n () =
  expect_exit "%n" 5
    {| int main(void) {
         int count = 0;
         char buf[32];
         sprintf(buf, "abcde%n", &count);
         return count;
       } |}

let test_sprintf_vararg_walk () =
  expect_stdout "vararg walk" "1 2 3 4 5 6\n"
    {| int main(void) {
         printf("%d %d %d %d %d %d\n", 1, 2, 3, 4, 5, 6);
         return 0;
       } |}

(* --- malloc/free --- *)

let test_malloc_basic () =
  expect_exit "malloc" 1
    {| int main(void) {
         char *p = malloc(100);
         if (!p) return 2;
         memset(p, 'a', 100);
         int *q = (int *)malloc(4 * sizeof(int));
         q[0] = 1; q[3] = 4;
         if (q[0] + q[3] != 5) return 3;
         free(p);
         free((char *)q);
         char *r = malloc(50);
         if (!r) return 4;
         free(r);
         return 1;
       } |}

let test_malloc_reuse () =
  expect_exit "free list reuse" 1
    {| int main(void) {
         char *a = malloc(64);
         free(a);
         char *b = malloc(64);
         if (a != b) return 2;   /* first fit should hand the chunk back */
         free(b);
         return 1;
       } |}

let test_malloc_many () =
  expect_exit "malloc stress" 1
    {| int main(void) {
         char *ptrs[50];
         int i;
         for (i = 0; i < 50; i++) {
           ptrs[i] = malloc(10 + i * 7);
           if (!ptrs[i]) return 2;
           memset(ptrs[i], i, 10);
         }
         for (i = 0; i < 50; i += 2) free(ptrs[i]);
         for (i = 1; i < 50; i += 2) {
           if (ptrs[i][0] != i) return 3;  /* odd blocks untouched */
           free(ptrs[i]);
         }
         char *big = malloc(2000);
         if (!big) return 4;
         free(big);
         return 1;
       } |}

let test_calloc_zeroes () =
  expect_exit "calloc" 1
    {| int main(void) {
         int *p = (int *)calloc(8, sizeof(int));
         int i;
         for (i = 0; i < 8; i++) {
           if (p[i] != 0) return 2;
         }
         free((char *)p);
         return 1;
       } |}

(* --- command line + stdin --- *)

let test_argv () =
  let config = Ptaint_sim.Sim.Config.(default |> with_argv [ "prog"; "alpha"; "beta" ]) in
  expect_stdout ~config "argv" "3 alpha beta\n"
    {| int main(int argc, char **argv) {
         printf("%d %s %s\n", argc, argv[1], argv[2]);
         return 0;
       } |}

let test_stdin_gets () =
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "typed line\nrest") in
  expect_stdout ~config "gets" "got: typed line\n"
    {| int main(void) {
         char buf[64];
         gets(buf);
         printf("got: %s\n", buf);
         return 0;
       } |}

(* --- misc semantics --- *)

let test_compound_assign () =
  expect_exit "compound" 1
    {| int main(void) {
         int x = 10;
         x += 5; x -= 3; x *= 2; x /= 3; x %= 5;  /* ((10+5-3)*2)/3 = 8; 8%5=3 *)  */
         if (x != 3) return 2;
         x <<= 4;
         x >>= 2;
         if (x != 12) return 3;
         x |= 1; x &= 0xD; x ^= 0x2;
         if (x != 0xF) return 4;
         char buf[4];
         buf[0] = 0;
         buf[0] += 65;
         if (buf[0] != 'A') return 5;
         int a[3] = {1, 2, 3};
         a[1] += 10;
         if (a[1] != 12) return 6;
         return 1;
       } |}

let test_incdec () =
  expect_exit "incdec" 1
    {| int main(void) {
         int i = 5;
         if (i++ != 5) return 2;
         if (i != 6) return 3;
         if (++i != 7) return 4;
         if (i-- != 7) return 5;
         if (--i != 5) return 6;
         int a[3] = {10, 20, 30};
         int *p = a;
         if (*p++ != 10) return 7;
         if (*p != 20) return 8;
         return 1;
       } |}

let test_sizeof () =
  expect_exit "sizeof" 1
    {| struct s { int a; char b; int c; };
       int main(void) {
         if (sizeof(int) != 4) return 2;
         if (sizeof(char) != 1) return 3;
         if (sizeof(char *) != 4) return 4;
         if (sizeof(struct s) != 12) return 5;
         int arr[10];
         if (sizeof(arr) != 40) return 6;
         return 1;
       } |}

let test_multi_decl () =
  expect_exit "multi declarators" 6
    {| int main(void) { int a = 1, b = 2, c = 3; return a + b + c; } |}

let test_switch () =
  expect_exit "switch dispatch" 1
    {| int classify(int x) {
         int r = 0;
         switch (x) {
           case 1:
           case 2:
             r = 10;          /* fallthrough from 1 */
             break;
           case 3:
             r = 20;          /* falls through into default */
           default:
             r += 5;
             break;
           case -4:
             r = 40;
             break;
         }
         return r;
       }
       int main(void) {
         if (classify(1) != 10) return 2;
         if (classify(2) != 10) return 3;
         if (classify(3) != 25) return 4;
         if (classify(99) != 5) return 5;
         if (classify(-4) != 40) return 6;
         return 1;
       } |}

let test_switch_in_loop () =
  expect_stdout "switch+loop+break" "digit digit other X\n"
    {| int main(void) {
         char *s = "12aX";
         int i;
         for (i = 0; s[i]; i++) {
           switch (s[i]) {
             case '1':
             case '2':
               printf("digit ");
               break;
             case 'X':
               printf("X");
               break;
             default:
               printf("other ");
               break;
           }
         }
         puts("");
         return 0;
       } |}

let test_nested_scopes () =
  expect_exit "scoping" 1
    {| int x = 100;
       int main(void) {
         int x = 1;
         {
           int x = 2;
           if (x != 2) return 3;
         }
         if (x != 1) return 4;
         return 1;
       } |}

let test_rand_deterministic () =
  expect_exit "rand" 1
    {| int main(void) {
         srand(7);
         int a = rand();
         srand(7);
         int b = rand();
         if (a != b) return 2;
         if (a < 0 || a > 0x7fff) return 3;
         return 1;
       } |}

(* --- compile errors --- *)

let expect_compile_error name src =
  match Ptaint_runtime.Runtime.compile src with
  | exception Ptaint_cc.Cc.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a compile error" name

let test_errors () =
  expect_compile_error "undefined variable" "int main(void) { return nope; }";
  expect_compile_error "undefined function" "int main(void) { missing(1); }";
  expect_compile_error "arity" "int f(int a) { return a; } int main(void) { return f(1, 2); }";
  expect_compile_error "bad field" "struct s { int a; }; int main(void) { struct s v; return v.b; }";
  expect_compile_error "not lvalue" "int main(void) { 3 = 4; return 0; }";
  expect_compile_error "break outside loop" "int main(void) { break; }";
  expect_compile_error "syntax" "int main(void) { return 1 +; }"

(* --- taint integration: C code, tainted input --- *)

let test_c_taint_flow () =
  (* A tainted word read from stdin and used as a pointer must alert. *)
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "aaaa") in
  let r =
    run_cfg config
      {| int main(void) {
           char buf[8];
           read(0, buf, 4);
           int *p = *(int **)buf;
           return *p;
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert a ->
    Alcotest.(check int) "tainted pointer value" 0x61616161
      (Ptaint_taint.Tword.value a.Ptaint_cpu.Machine.reg_value)
  | o -> Alcotest.failf "expected alert, got %a" Ptaint_sim.Sim.pp_outcome o

let test_c_validation_launders () =
  (* Bounds-checked values are trusted (Table 1 rule 4 + register
     residency): indexing with a checked tainted integer is silent. *)
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "\003\000\000\000") in
  let r =
    run_cfg config
      {| int table[8] = {0, 10, 20, 30, 40, 50, 60, 70};
         int main(void) {
           int idx = 0;
           read(0, (char *)&idx, 4);
           if (idx >= 0 && idx < 8) return table[idx];
           return -1;
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Exited 30 -> ()
  | o -> Alcotest.failf "expected clean exit 30, got %a" Ptaint_sim.Sim.pp_outcome o

let test_c_unchecked_index_alerts () =
  (* Without validation the tainted index taints the address. *)
  let config = Ptaint_sim.Sim.Config.(default |> with_stdin "\003\000\000\000") in
  let r =
    run_cfg config
      {| int table[8] = {0, 10, 20, 30, 40, 50, 60, 70};
         int main(void) {
           int idx = 0;
           read(0, (char *)&idx, 4);
           return table[idx];
         } |}
  in
  match r.Ptaint_sim.Sim.outcome with
  | Ptaint_sim.Sim.Alert _ -> ()
  | o -> Alcotest.failf "expected alert, got %a" Ptaint_sim.Sim.pp_outcome o

let () =
  Alcotest.run "cc"
    [ ( "basics",
        [ Alcotest.test_case "return" `Quick test_return_code;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "puts" `Quick test_puts;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "for" `Quick test_for_loop;
          Alcotest.test_case "do-while" `Quick test_do_while;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "logical" `Quick test_logical_ops;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "unsigned" `Quick test_unsigned_compare;
          Alcotest.test_case "bits" `Quick test_shifts_and_bits ] );
      ( "memory",
        [ Alcotest.test_case "pointers" `Quick test_pointer_basics;
          Alcotest.test_case "arrays" `Quick test_array_index;
          Alcotest.test_case "pointer arith" `Quick test_pointer_arith;
          Alcotest.test_case "chars" `Quick test_char_ops;
          Alcotest.test_case "globals" `Quick test_global_data ] );
      ( "libc",
        [ Alcotest.test_case "strings" `Quick test_string_functions;
          Alcotest.test_case "atoi" `Quick test_atoi;
          Alcotest.test_case "malloc" `Quick test_malloc_basic;
          Alcotest.test_case "free-list reuse" `Quick test_malloc_reuse;
          Alcotest.test_case "malloc stress" `Quick test_malloc_many;
          Alcotest.test_case "calloc" `Quick test_calloc_zeroes;
          Alcotest.test_case "rand" `Quick test_rand_deterministic ] );
      ( "structs/fnptr",
        [ Alcotest.test_case "structs" `Quick test_structs;
          Alcotest.test_case "struct arrays" `Quick test_struct_array;
          Alcotest.test_case "function pointers" `Quick test_function_pointers ] );
      ( "printf",
        [ Alcotest.test_case "basic" `Quick test_printf_basic;
          Alcotest.test_case "width" `Quick test_printf_width;
          Alcotest.test_case "negative" `Quick test_printf_negative;
          Alcotest.test_case "%n" `Quick test_percent_n;
          Alcotest.test_case "vararg walk" `Quick test_sprintf_vararg_walk ] );
      ( "io",
        [ Alcotest.test_case "argv" `Quick test_argv;
          Alcotest.test_case "gets" `Quick test_stdin_gets ] );
      ( "semantics",
        [ Alcotest.test_case "compound assign" `Quick test_compound_assign;
          Alcotest.test_case "inc/dec" `Quick test_incdec;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "multi decl" `Quick test_multi_decl;
          Alcotest.test_case "switch" `Quick test_switch;
          Alcotest.test_case "switch in loop" `Quick test_switch_in_loop;
          Alcotest.test_case "scoping" `Quick test_nested_scopes ] );
      ("errors", [ Alcotest.test_case "compile errors" `Quick test_errors ]);
      ( "taint",
        [ Alcotest.test_case "tainted pointer alerts" `Quick test_c_taint_flow;
          Alcotest.test_case "validated index silent" `Quick test_c_validation_launders;
          Alcotest.test_case "unchecked index alerts" `Quick test_c_unchecked_index_alerts ] ) ]
