(* Differential testing of the Mini-C compiler: random expression
   trees are evaluated by an OCaml reference interpreter with 32-bit
   semantics and by the compiled program running on the simulated
   machine; results must agree.  Also a randomised allocator trace
   test with an OCaml-side model. *)

(* --- 32-bit reference semantics --- *)

module Ref = struct
  let mask v = v land 0xFFFFFFFF
  let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

  type expr =
    | Num of int
    | Var of int (* 0..2 -> a, b, c *)
    | Bin of string * expr * expr
    | Un of string * expr
    | Cond of expr * expr * expr

  let rec eval env = function
    | Num n -> mask n
    | Var i -> env.(i)
    | Un ("-", e) -> mask (-eval env e)
    | Un ("~", e) -> mask (lnot (eval env e))
    | Un ("!", e) -> if eval env e = 0 then 1 else 0
    | Un (op, _) -> failwith op
    | Cond (c, t, f) -> if eval env c <> 0 then eval env t else eval env f
    | Bin (op, a, b) ->
      let x = eval env a and y = eval env b in
      (match op with
       | "+" -> mask (x + y)
       | "-" -> mask (x - y)
       | "*" -> Int64.(to_int (logand (mul (of_int x) (of_int y)) 0xFFFFFFFFL))
       | "/" -> if y = 0 then 0 else mask (signed x / signed y)
       | "%" -> if y = 0 then mask x else mask (signed x mod signed y)
       | "&" -> x land y
       | "|" -> x lor y
       | "^" -> x lxor y
       | "<<" -> mask (x lsl (y land 31))
       | ">>" -> mask (signed x asr (y land 31))
       | "<" -> if signed x < signed y then 1 else 0
       | ">" -> if signed x > signed y then 1 else 0
       | "<=" -> if signed x <= signed y then 1 else 0
       | ">=" -> if signed x >= signed y then 1 else 0
       | "==" -> if x = y then 1 else 0
       | "!=" -> if x <> y then 1 else 0
       | "&&" -> if x <> 0 && y <> 0 then 1 else 0
       | "||" -> if x <> 0 || y <> 0 then 1 else 0
       | op -> failwith op)

  let rec render = function
    | Num n -> string_of_int n
    | Var i -> String.make 1 (Char.chr (Char.code 'a' + i))
    (* the space avoids "--1" lexing as a decrement *)
    | Un (op, e) -> Printf.sprintf "(%s %s)" op (render e)
    | Cond (c, t, f) -> Printf.sprintf "(%s ? %s : %s)" (render c) (render t) (render f)
    | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)
end

(* Division/modulo only by non-zero constants keeps both sides off
   undefined behaviour; shifts use constant amounts 0..31. *)
let expr_gen =
  let open QCheck2.Gen in
  let leaf =
    oneof [ (int_range (-100) 100 >|= fun n -> Ref.Num n); (int_range 0 2 >|= fun i -> Ref.Var i) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            ( 5,
              let* op =
                oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "<"; ">"; "<="; ">="; "=="; "!=" ]
              in
              let* a = self (depth - 1) in
              let* b = self (depth - 1) in
              return (Ref.Bin (op, a, b)) );
            ( 1,
              let* op = oneofl [ "/"; "%" ] in
              let* a = self (depth - 1) in
              let* d = oneofl [ -7; -3; 2; 3; 5; 17 ] in
              return (Ref.Bin (op, a, Ref.Num d)) );
            ( 1,
              let* op = oneofl [ "<<"; ">>" ] in
              let* a = self (depth - 1) in
              let* s = int_range 0 31 in
              return (Ref.Bin (op, a, Ref.Num s)) );
            ( 1,
              let* op = oneofl [ "&&"; "||" ] in
              let* a = self (depth - 1) in
              let* b = self (depth - 1) in
              return (Ref.Bin (op, a, b)) );
            (1, self (depth - 1) >|= fun e -> Ref.Un ("-", e));
            (1, self (depth - 1) >|= fun e -> Ref.Un ("~", e));
            (1, self (depth - 1) >|= fun e -> Ref.Un ("!", e));
            ( 1,
              let* c = self (depth - 1) in
              let* t = self (depth - 1) in
              let* f = self (depth - 1) in
              return (Ref.Cond (c, t, f)) ) ])
    4

let run_guest source =
  let program = Ptaint_runtime.Runtime.compile source in
  Ptaint_sim.Sim.run program

let prop_expr_agrees =
  QCheck2.Test.make ~count:120 ~name:"compiled expression = reference evaluation"
    ~print:(fun (e, va, vb) -> Printf.sprintf "a=%d b=%d expr=%s" va vb (Ref.render e))
    QCheck2.Gen.(triple expr_gen (int_range (-50) 50) (int_range (-50) 50))
    (fun (e, va, vb) ->
      let env = [| Ref.mask va; Ref.mask vb; Ref.mask 13 |] in
      let expected = Ref.signed (Ref.eval env e) in
      let source =
        Printf.sprintf
          "int main(void) { int a = %d; int b = %d; int c = 13; printf(\"%%d\", %s); return 0; }"
          va vb (Ref.render e)
      in
      let r = run_guest source in
      match r.Ptaint_sim.Sim.outcome with
      | Ptaint_sim.Sim.Exited 0 ->
        if r.Ptaint_sim.Sim.stdout = string_of_int expected then true
        else
          QCheck2.Test.fail_reportf "expr %s: guest printed %s, reference %d" (Ref.render e)
            r.Ptaint_sim.Sim.stdout expected
      | o ->
        QCheck2.Test.fail_reportf "expr %s: guest %s" (Ref.render e)
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome o))

(* --- allocator trace fuzzing --- *)

type op = Alloc of int * int * int | Free of int | Check of int  (* slot, size, fill *)

let trace_gen =
  let open QCheck2.Gen in
  let slots = 6 in
  let step = oneof
      [ (triple (int_range 0 (slots - 1)) (int_range 0 200) (int_range 1 255)
         >|= fun (s, size, fill) -> Alloc (s, size, fill));
        (int_range 0 (slots - 1) >|= fun s -> Free s);
        (int_range 0 (slots - 1) >|= fun s -> Check s) ]
  in
  list_size (int_range 5 40) step

(* Render a trace as a guest program with inline integrity checks; the
   OCaml model tracks slot liveness so frees and checks are valid. *)
let render_trace ops =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "char *slots[8];\nint sizes[8];\nint fills[8];\nint main(void) {\n";
  Buffer.add_string buf "  int i;\n  for (i = 0; i < 8; i++) slots[i] = 0;\n";
  let live = Array.make 8 false in
  List.iter
    (fun op ->
      match op with
      | Alloc (s, size, fill) ->
        if live.(s) then Buffer.add_string buf (Printf.sprintf "  free(slots[%d]);\n" s);
        live.(s) <- true;
        Buffer.add_string buf
          (Printf.sprintf
             "  slots[%d] = malloc(%d); if (!slots[%d]) return 90;\n\
             \  sizes[%d] = %d; fills[%d] = %d; memset(slots[%d], %d, %d);\n"
             s size s s size s fill s fill size)
      | Free s ->
        if live.(s) then begin
          live.(s) <- false;
          Buffer.add_string buf (Printf.sprintf "  free(slots[%d]); slots[%d] = 0;\n" s s)
        end
      | Check s ->
        if live.(s) then
          Buffer.add_string buf
            (Printf.sprintf
               "  for (i = 0; i < sizes[%d]; i++) { if (slots[%d][i] != fills[%d]) return 91; }\n"
               s s s))
    ops;
  (* final integrity sweep and a fresh allocation to exercise the bins *)
  Buffer.add_string buf
    "  for (i = 0; i < 8; i++) {\n\
     \    if (slots[i]) { int k; for (k = 0; k < sizes[i]; k++) { if (slots[i][k] != fills[i]) return 92; } }\n\
     \  }\n\
     \  char *last = malloc(64); if (!last) return 93; memset(last, 7, 64);\n\
     \  return 0;\n}\n";
  Buffer.contents buf

let prop_allocator_trace =
  QCheck2.Test.make ~count:40 ~name:"allocator: random traces keep block contents intact"
    trace_gen
    (fun ops ->
      let r = run_guest (render_trace ops) in
      match r.Ptaint_sim.Sim.outcome with
      | Ptaint_sim.Sim.Exited 0 -> true
      | Ptaint_sim.Sim.Exited c -> QCheck2.Test.fail_reportf "guest check failed with %d" c
      | o ->
        QCheck2.Test.fail_reportf "guest died: %s"
          (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome o))

(* --- string functions vs OCaml --- *)

let printable_gen = QCheck2.Gen.(string_size ~gen:(char_range 'A' 'z') (int_range 0 30))

let prop_strlen_strcmp =
  QCheck2.Test.make ~count:60 ~name:"strlen/strcmp/strchr agree with OCaml"
    QCheck2.Gen.(pair printable_gen printable_gen)
    (fun (s1, s2) ->
      let expected_len = String.length s1 in
      let expected_cmp = compare s1 s2 in
      let expected_cmp = if expected_cmp < 0 then -1 else if expected_cmp > 0 then 1 else 0 in
      let expected_chr = match String.index_opt s1 'k' with Some i -> i | None -> -1 in
      let source =
        Printf.sprintf
          {| int main(void) {
               char *s1 = "%s";
               char *s2 = "%s";
               int c = strcmp(s1, s2);
               if (c < 0) c = -1;
               if (c > 0) c = 1;
               char *p = strchr(s1, 'k');
               int idx = p ? p - s1 : -1;
               printf("%%d %%d %%d", strlen(s1), c, idx);
               return 0;
             } |}
          (String.concat "" (List.map (fun c -> Printf.sprintf "\\x%02x" (Char.code c))
                               (List.init (String.length s1) (String.get s1))))
          (String.concat "" (List.map (fun c -> Printf.sprintf "\\x%02x" (Char.code c))
                               (List.init (String.length s2) (String.get s2))))
      in
      let r = run_guest source in
      match r.Ptaint_sim.Sim.outcome with
      | Ptaint_sim.Sim.Exited 0 ->
        let expected = Printf.sprintf "%d %d %d" expected_len expected_cmp expected_chr in
        if r.Ptaint_sim.Sim.stdout = expected then true
        else
          QCheck2.Test.fail_reportf "strings %S %S: got %S want %S" s1 s2
            r.Ptaint_sim.Sim.stdout expected
      | o ->
        QCheck2.Test.fail_reportf "guest died: %s" (Format.asprintf "%a" Ptaint_sim.Sim.pp_outcome o))

(* strcmp in our libc is byte-wise; OCaml compare on strings is also
   lexicographic byte-wise, so the above is sound. *)

let () =
  Alcotest.run "compiler-random"
    [ ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_expr_agrees; prop_allocator_trace; prop_strlen_strcmp ] ) ]
