(* The seeded program/attack generator: a job stream must be a pure
   function of its spec (same seed => identical programs, payloads and
   tags, however it is re-derived), and streaming it through the
   campaign engine must give byte-identical aggregates at any -j and
   across a checkpoint/resume boundary. *)

module Campaign = Ptaint_campaign.Campaign
module Gen = Ptaint_gen.Gen

let spec () = Gen.spec ~variants:4 ~seed:7 ~jobs:36 ()

let job_fingerprint (j : Ptaint_campaign.Job.t) =
  let payload =
    match j.Ptaint_campaign.Job.payload with
    | Ptaint_campaign.Job.C_source s -> s
    | _ -> "<non-C payload>"
  in
  Printf.sprintf "%s | stdin:%s | %s" j.Ptaint_campaign.Job.tag
    (String.escaped j.Ptaint_campaign.Job.config.Ptaint_sim.Sim.stdin)
    (String.escaped payload)

let test_stream_pure_function_of_seed () =
  let a = List.of_seq (Gen.jobs (spec ())) in
  let b = List.of_seq (Gen.jobs (spec ())) in
  Alcotest.(check (list string))
    "re-deriving the spec reproduces every program, payload and tag"
    (List.map job_fingerprint a) (List.map job_fingerprint b);
  (* random access agrees with the stream *)
  let t = spec () in
  List.iteri
    (fun i streamed ->
      Alcotest.(check string)
        (Printf.sprintf "job %d by index = job %d by stream" i i)
        (job_fingerprint (Gen.job t i))
        (job_fingerprint streamed))
    a;
  (* a different seed actually changes the stream *)
  let other = Gen.spec ~variants:4 ~seed:8 ~jobs:36 () in
  Alcotest.(check bool) "seed is load-bearing" false
    (List.map job_fingerprint (List.of_seq (Gen.jobs other))
     = List.map job_fingerprint a)

let stream_lines ?start ?tally t seq =
  let lines = ref [] in
  let tally, cursor =
    Campaign.run_stream ~domains:t ?start ?tally
      ~on_result:(fun s -> lines := Campaign.jsonl_of_summary s :: !lines)
      seq
  in
  (List.rev !lines, tally, cursor)

let test_stream_deterministic_across_j () =
  let j1, t1, c1 = stream_lines 1 (Gen.jobs (spec ())) in
  let j4, t4, c4 = stream_lines 4 (Gen.jobs (spec ())) in
  Alcotest.(check int) "same cursor" c1 c4;
  Alcotest.(check (list string)) "same JSONL lines in the same order" j1 j4;
  Alcotest.(check (list int)) "same detection sites"
    (Campaign.tally_sites t1) (Campaign.tally_sites t4);
  Alcotest.(check string) "same metrics table"
    (Campaign.metrics_table (Campaign.tally_stats t1))
    (Campaign.metrics_table (Campaign.tally_stats t4))

let test_resume_boundary () =
  let t = spec () in
  let _, whole, _ = stream_lines 2 (Gen.jobs t) in
  let k = 17 in
  let first, half, c1 = stream_lines 2 (Seq.take k (Gen.jobs t)) in
  Alcotest.(check int) "first leg stops at the boundary" k c1;
  (* survive the checkpoint round trip, as a resumed run would *)
  let restored = Campaign.load_tally (Campaign.dump_tally half) in
  let second, resumed, c2 =
    stream_lines 2 ~start:k ~tally:restored (Gen.jobs_from t k)
  in
  Alcotest.(check int) "second leg reaches the end" (Gen.jobs_of t) c2;
  Alcotest.(check string) "resumed tally = uninterrupted tally"
    (Campaign.metrics_table (Campaign.tally_stats whole))
    (Campaign.metrics_table (Campaign.tally_stats resumed));
  Alcotest.(check (list int)) "resumed sites = uninterrupted sites"
    (Campaign.tally_sites whole) (Campaign.tally_sites resumed);
  (* the two legs' sink lines, concatenated, are the uninterrupted sink *)
  let uninterrupted, _, _ = stream_lines 2 (Gen.jobs t) in
  Alcotest.(check (list string)) "sink splices cleanly at the boundary"
    uninterrupted (first @ second)

let () =
  Alcotest.run "gen"
    [ ( "determinism",
        [ Alcotest.test_case "stream is a pure function of the seed" `Quick
            test_stream_pure_function_of_seed;
          Alcotest.test_case "byte-identical at -j1 and -j4" `Quick
            test_stream_deterministic_across_j;
          Alcotest.test_case "checkpoint/resume boundary" `Quick
            test_resume_boundary ] ) ]
