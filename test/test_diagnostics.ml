(* Post-mortem diagnostics: symbolization and frame-chain backtraces
   recovered from the guest at detection time. *)

open Ptaint_attacks

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_symbolize () =
  let p =
    Ptaint_asm.Assembler.assemble_exn
      ".text\nmain:   nop\n        nop\nhelper: nop\n        jr $ra\n"
  in
  Alcotest.(check string) "exact" "main" (Ptaint_sim.Diagnostics.symbolize p 0x400000);
  Alcotest.(check string) "offset" "main+0x4" (Ptaint_sim.Diagnostics.symbolize p 0x400004);
  Alcotest.(check string) "second symbol" "helper" (Ptaint_sim.Diagnostics.symbolize p 0x400008);
  Alcotest.(check string) "outside text" "0x10000000"
    (Ptaint_sim.Diagnostics.symbolize p 0x10000000);
  match Ptaint_sim.Diagnostics.nearest_symbol p 0x40000c with
  | Some (name, off) ->
    Alcotest.(check string) "name" "helper" name;
    Alcotest.(check int) "off" 4 off
  | None -> Alcotest.fail "expected symbol"

let test_backtrace_format_attack () =
  let _, result = Scenario.run Catalog.exp3_format in
  let p = result.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program in
  let frames = Ptaint_sim.Diagnostics.backtrace p result.Ptaint_sim.Sim.machine in
  let locations = List.map (fun f -> f.Ptaint_sim.Diagnostics.location) frames in
  let has name = List.exists (fun l -> contains l name) locations in
  Alcotest.(check bool) (Printf.sprintf "vformat in %s" (String.concat "," locations)) true
    (has "vformat");
  Alcotest.(check bool) "printf frame" true (has "printf");
  Alcotest.(check bool) "exp3 frame" true (has "exp3");
  Alcotest.(check bool) "main frame" true (has "main");
  (* innermost first *)
  match locations with
  | first :: _ -> Alcotest.(check bool) "vformat innermost" true (contains first "vformat")
  | [] -> Alcotest.fail "empty backtrace"

let test_report_contents () =
  let _, result = Scenario.run Catalog.wuftpd_format_uid in
  let report = Ptaint_sim.Diagnostics.report result in
  Alcotest.(check bool) "alert line" true (contains report "security alert");
  Alcotest.(check bool) "backtrace section" true (contains report "guest backtrace:");
  Alcotest.(check bool) "handler frame" true (contains report "do_site_exec");
  Alcotest.(check bool) "session loop frame" true (contains report "handle_session");
  Alcotest.(check bool) "tainted registers listed" true (contains report "tainted registers:")

let test_tainted_registers () =
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  let tainted = Ptaint_sim.Diagnostics.tainted_registers result.Ptaint_sim.Sim.machine in
  Alcotest.(check bool) "ra tainted" true
    (List.exists
       (fun (name, w) -> name = "ra" && Ptaint_taint.Tword.value w = 0x61616161)
       tainted)

let test_tainted_hi_lo () =
  (* MULT with one tainted operand taints HI and LO; both slots must
     show up in the diagnostics, which once stopped at the 32 GPRs. *)
  let open Ptaint_isa in
  let mem = Ptaint_mem.Memory.create () in
  let machine =
    Ptaint_cpu.Machine.create
      ~code:{ Ptaint_cpu.Machine.base = Ptaint_mem.Layout.text_base;
              insns = [| Insn.Muldiv (MULT, 2, 3) |] }
      ~mem ~entry:Ptaint_mem.Layout.text_base ()
  in
  Ptaint_cpu.Regfile.set machine.Ptaint_cpu.Machine.regs 2
    (Ptaint_taint.Tword.tainted 0x10001);
  Ptaint_cpu.Regfile.set machine.Ptaint_cpu.Machine.regs 3
    (Ptaint_taint.Tword.untainted 7);
  (match Ptaint_cpu.Machine.step machine with
   | Ptaint_cpu.Machine.Normal -> ()
   | _ -> Alcotest.fail "mult step");
  let names = List.map fst (Ptaint_sim.Diagnostics.tainted_registers machine) in
  Alcotest.(check bool) "hi listed" true (List.mem "hi" names);
  Alcotest.(check bool) "lo listed" true (List.mem "lo" names)

let test_provenance_report () =
  (* the GHTTPD attack arrives over the network: the report must name
     the introducing syscall and show the instruction window *)
  let _, result = Scenario.run Catalog.ghttpd_url_pointer in
  let report = Ptaint_sim.Diagnostics.report result in
  Alcotest.(check bool) "provenance section" true (contains report "taint provenance:");
  Alcotest.(check bool) "network source" true (contains report "recv(network)");
  Alcotest.(check bool) "instruction window" true
    (contains report "instructions before detection:");
  (* stdin-fed attack names read(stdin) *)
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  let report = Ptaint_sim.Diagnostics.report result in
  Alcotest.(check bool) "stdin source" true (contains report "read(stdin)")

let test_insn_window_ends_at_alert () =
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  (match result.Ptaint_sim.Sim.outcome with
   | Ptaint_sim.Sim.Alert a ->
     (match List.rev (Ptaint_sim.Sim.insn_window result) with
      | (pc, _) :: _ ->
        Alcotest.(check int) "window ends at the alerting pc"
          a.Ptaint_cpu.Machine.alert_pc pc
      | [] -> Alcotest.fail "empty instruction window")
   | _ -> Alcotest.fail "expected an alert")

let test_backtrace_survives_smashed_frame () =
  (* after exp1's overflow the frame chain is corrupt; the walk must
     stop cleanly rather than loop or crash *)
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  let p = result.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program in
  let frames = Ptaint_sim.Diagnostics.backtrace p result.Ptaint_sim.Sim.machine in
  Alcotest.(check bool) "bounded" true (List.length frames <= 32 && List.length frames >= 1)

let () =
  Alcotest.run "diagnostics"
    [ ( "symbolize",
        [ Alcotest.test_case "nearest symbol" `Quick test_symbolize ] );
      ( "backtrace",
        [ Alcotest.test_case "format attack chain" `Quick test_backtrace_format_attack;
          Alcotest.test_case "incident report" `Quick test_report_contents;
          Alcotest.test_case "tainted registers" `Quick test_tainted_registers;
          Alcotest.test_case "tainted hi/lo" `Quick test_tainted_hi_lo;
          Alcotest.test_case "corrupt frame chain" `Quick test_backtrace_survives_smashed_frame ] );
      ( "observability",
        [ Alcotest.test_case "provenance in report" `Quick test_provenance_report;
          Alcotest.test_case "window ends at alert" `Quick test_insn_window_ends_at_alert ] ) ]
