(* Post-mortem diagnostics: symbolization and frame-chain backtraces
   recovered from the guest at detection time. *)

open Ptaint_attacks

let contains haystack needle =
  let rec go i =
    i + String.length needle <= String.length haystack
    && (String.sub haystack i (String.length needle) = needle || go (i + 1))
  in
  go 0

let test_symbolize () =
  let p =
    Ptaint_asm.Assembler.assemble_exn
      ".text\nmain:   nop\n        nop\nhelper: nop\n        jr $ra\n"
  in
  Alcotest.(check string) "exact" "main" (Ptaint_sim.Diagnostics.symbolize p 0x400000);
  Alcotest.(check string) "offset" "main+0x4" (Ptaint_sim.Diagnostics.symbolize p 0x400004);
  Alcotest.(check string) "second symbol" "helper" (Ptaint_sim.Diagnostics.symbolize p 0x400008);
  Alcotest.(check string) "outside text" "0x10000000"
    (Ptaint_sim.Diagnostics.symbolize p 0x10000000);
  match Ptaint_sim.Diagnostics.nearest_symbol p 0x40000c with
  | Some (name, off) ->
    Alcotest.(check string) "name" "helper" name;
    Alcotest.(check int) "off" 4 off
  | None -> Alcotest.fail "expected symbol"

let test_backtrace_format_attack () =
  let _, result = Scenario.run Catalog.exp3_format in
  let p = result.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program in
  let frames = Ptaint_sim.Diagnostics.backtrace p result.Ptaint_sim.Sim.machine in
  let locations = List.map (fun f -> f.Ptaint_sim.Diagnostics.location) frames in
  let has name = List.exists (fun l -> contains l name) locations in
  Alcotest.(check bool) (Printf.sprintf "vformat in %s" (String.concat "," locations)) true
    (has "vformat");
  Alcotest.(check bool) "printf frame" true (has "printf");
  Alcotest.(check bool) "exp3 frame" true (has "exp3");
  Alcotest.(check bool) "main frame" true (has "main");
  (* innermost first *)
  match locations with
  | first :: _ -> Alcotest.(check bool) "vformat innermost" true (contains first "vformat")
  | [] -> Alcotest.fail "empty backtrace"

let test_report_contents () =
  let _, result = Scenario.run Catalog.wuftpd_format_uid in
  let report = Ptaint_sim.Diagnostics.report result in
  Alcotest.(check bool) "alert line" true (contains report "security alert");
  Alcotest.(check bool) "backtrace section" true (contains report "guest backtrace:");
  Alcotest.(check bool) "handler frame" true (contains report "do_site_exec");
  Alcotest.(check bool) "session loop frame" true (contains report "handle_session");
  Alcotest.(check bool) "tainted registers listed" true (contains report "tainted registers:")

let test_tainted_registers () =
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  let tainted = Ptaint_sim.Diagnostics.tainted_registers result.Ptaint_sim.Sim.machine in
  Alcotest.(check bool) "ra tainted" true
    (List.exists
       (fun (r, w) -> r = Ptaint_isa.Reg.ra && Ptaint_taint.Tword.value w = 0x61616161)
       tainted)

let test_backtrace_survives_smashed_frame () =
  (* after exp1's overflow the frame chain is corrupt; the walk must
     stop cleanly rather than loop or crash *)
  let _, result = Scenario.run Catalog.exp1_stack_smash in
  let p = result.Ptaint_sim.Sim.image.Ptaint_asm.Loader.program in
  let frames = Ptaint_sim.Diagnostics.backtrace p result.Ptaint_sim.Sim.machine in
  Alcotest.(check bool) "bounded" true (List.length frames <= 32 && List.length frames >= 1)

let () =
  Alcotest.run "diagnostics"
    [ ( "symbolize",
        [ Alcotest.test_case "nearest symbol" `Quick test_symbolize ] );
      ( "backtrace",
        [ Alcotest.test_case "format attack chain" `Quick test_backtrace_format_attack;
          Alcotest.test_case "incident report" `Quick test_report_contents;
          Alcotest.test_case "tainted registers" `Quick test_tainted_registers;
          Alcotest.test_case "corrupt frame chain" `Quick test_backtrace_survives_smashed_frame ] ) ]
